"""Tests for in-place repartitioning and its serving-layer soundness.

The contract under test (DESIGN.md §7): ``SimulatedCluster.repartition``
rebuilds the fragments without changing any query's answer, bumps every
fragment version past anything its fragment id ever carried (so warm
``SiteResultCache`` entries can never be served across a repartition), and
reports before/after quality.  The cross-executor classes assert the
partition bench's acceptance criterion — answers identical across
partitioners on every executor backend — on the bench's own pinned
workload generator.
"""

import pytest

from repro.core.engine import evaluate
from repro.distributed import SimulatedCluster
from repro.distributed.executors import EXECUTORS
from repro.errors import DistributedError, FragmentationError
from repro.graph import erdos_renyi
from repro.partition import (
    PartitionQuality,
    check_fragmentation,
    chunk_partition,
    measure_quality,
)
from repro.serving import BatchQueryEngine
from repro.workload import per_class_workload
from repro.workload.paper_example import figure1_graph


@pytest.fixture
def graph():
    return erdos_renyi(60, 180, seed=5, num_labels=3)


@pytest.fixture
def cluster(graph):
    return SimulatedCluster.from_graph(graph, 4, partitioner="hash", seed=0)


class TestRepartition:
    def test_answers_unchanged(self, graph, cluster):
        workloads = per_class_workload(graph, 4, seed=0)
        before = {
            algo: [evaluate(cluster, q, algo).answer for q in queries]
            for algo, queries in workloads.items()
        }
        cluster.repartition("refined", seed=0)
        after = {
            algo: [evaluate(cluster, q, algo).answer for q in queries]
            for algo, queries in workloads.items()
        }
        assert before == after

    def test_report_shows_improvement(self, cluster):
        report = cluster.repartition("refined", seed=0)
        assert isinstance(report.before, PartitionQuality)
        assert isinstance(report.after, PartitionQuality)
        assert report.partitioner == "refined"
        assert report.after.num_boundary_nodes <= report.before.num_boundary_nodes
        assert report.boundary_delta <= 0
        assert report.traffic_bound_ratio <= 1.0
        assert "after (refined)" in report.summary()

    def test_new_fragmentation_is_valid(self, cluster):
        graph = cluster.fragmentation.restore_graph()
        cluster.repartition("multilevel", seed=1)
        check_fragmentation(graph, cluster.fragmentation)
        assert measure_quality(cluster.fragmentation).num_nodes == graph.num_nodes

    def test_versions_bumped_past_history(self, cluster):
        v0 = {f.fid: cluster.fragment_version(f.fid) for f in cluster.fragmentation}
        cluster.bump_fragment_version(0)  # simulate an in-place mutation
        cluster.repartition("refined", seed=0)
        for frag in cluster.fragmentation:
            assert cluster.fragment_version(frag.fid) > v0[frag.fid]
        # fragment 0 was at version 1 before repartition: must now exceed it
        assert cluster.fragment_version(0) == 2

    def test_shrinking_then_growing_never_reuses_versions(self, cluster):
        cluster.repartition("refined", num_fragments=2, seed=0)
        versions_at_2 = {
            f.fid: cluster.fragment_version(f.fid) for f in cluster.fragmentation
        }
        cluster.repartition("refined", num_fragments=4, seed=0)
        # fids 2 and 3 disappeared and came back: their version counters
        # continue past retirement (0 was used before the shrink), they do
        # not restart at 0 (which would resurrect stale cache keys).
        for fid, old in versions_at_2.items():
            assert cluster.fragment_version(fid) > old
        assert cluster.fragment_version(2) == 1
        assert cluster.fragment_version(3) == 1

    def test_fragment_count_change_rebuilds_sites(self, cluster):
        assert cluster.num_sites == 4
        cluster.repartition("refined", num_fragments=2, seed=0)
        assert cluster.num_sites == 2
        assert len(cluster.fragmentation) == 2

    def test_explicit_assignment_and_callable(self, graph, cluster):
        report = cluster.repartition(chunk_partition)
        assert report.partitioner == "chunk_partition"
        placement = {node: 0 for node in graph.nodes()}
        report = cluster.repartition(placement, num_fragments=1)
        assert report.partitioner == "<assignment>"
        assert cluster.num_sites == 1

    def test_rejects_garbage_partitioner(self, cluster):
        with pytest.raises(DistributedError, match="partitioner"):
            cluster.repartition(42)
        with pytest.raises(FragmentationError, match="unknown partitioner"):
            cluster.repartition("nope")


class TestServingCacheSoundness:
    """A warm BatchQueryEngine must never serve pre-repartition partials."""

    def test_warm_cache_across_repartition(self, graph, cluster):
        queries = per_class_workload(graph, 5, seed=1)["disReach"]
        engine = BatchQueryEngine(cluster)
        first = engine.run_batch(queries)
        assert engine.cache.hits + engine.cache.misses > 0
        cluster.repartition("refined", seed=0)
        second = engine.run_batch(queries)
        fresh = [evaluate(cluster, q).answer for q in queries]
        assert first.answers == second.answers == fresh
        # The second batch re-executed site work (new versions miss the cache)
        assert second.workload.tasks_executed > 0

    def test_repeated_repartitions_stay_sound(self, graph, cluster):
        queries = per_class_workload(graph, 4, seed=2)["disDist"]
        engine = BatchQueryEngine(cluster)
        reference = engine.run_batch(queries).answers
        for partitioner in ("refined", "multilevel", "chunk", "refined"):
            cluster.repartition(partitioner, seed=0)
            assert engine.run_batch(queries).answers == reference


class TestCrossPartitionerCrossExecutor:
    """The bench acceptance: identical answers on every backend x partitioner."""

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_paper_example_all_partitioners(self, executor):
        graph = figure1_graph()
        workloads = per_class_workload(graph, 3, seed=0)
        reference = None
        for partitioner in ("hash", "chunk", "greedy", "refined", "multilevel"):
            cluster = SimulatedCluster.from_graph(
                graph, 3, partitioner=partitioner, seed=0, executor=executor
            )
            answers = {
                algo: [evaluate(cluster, q, algo).answer for q in queries]
                for algo, queries in workloads.items()
            }
            if reference is None:
                reference = answers
            else:
                assert answers == reference, (executor, partitioner)

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_random_labeled_graph(self, executor, graph):
        workloads = per_class_workload(graph, 2, seed=3)
        reference = None
        for partitioner in ("hash", "refined", "multilevel"):
            cluster = SimulatedCluster.from_graph(
                graph, 4, partitioner=partitioner, seed=0, executor=executor
            )
            answers = {
                algo: [evaluate(cluster, q, algo).answer for q in queries]
                for algo, queries in workloads.items()
            }
            if reference is None:
                reference = answers
            else:
                assert answers == reference, (executor, partitioner)


class TestShippingCostModel:
    """repartition() is no longer free: moved fragment data is charged."""

    def test_real_move_charges_bytes_and_seconds(self, cluster):
        report = cluster.repartition("refined", seed=0)
        assert report.moved_nodes > 0
        assert report.shipping is not None
        assert report.shipping.algorithm == "repartition"
        assert report.shipping.traffic_bytes > 0
        assert report.shipping.network_seconds > 0.0
        assert report.shipping.num_messages > 0
        assert "shipped" in report.summary()

    def test_identity_assignment_ships_nothing(self, cluster):
        placement = dict(cluster.fragmentation.placement)
        report = cluster.repartition(placement)
        assert report.moved_nodes == 0
        assert report.shipping.traffic_bytes == 0
        assert report.shipping.network_seconds == 0.0
        # still a new generation: versions and epoch must advance
        assert report.epoch == cluster.partition_epoch == 1

    def test_more_movement_ships_more(self, graph, cluster):
        placement = dict(cluster.fragmentation.placement)
        one_moved = dict(placement)
        node = sorted(graph.nodes())[0]
        one_moved[node] = (placement[node] + 1) % 4
        small = cluster.repartition(one_moved).shipping.traffic_bytes
        flipped = {n: (f + 1) % 4 for n, f in one_moved.items()}
        large = cluster.repartition(flipped).shipping.traffic_bytes
        assert 0 < small < large

    def test_epoch_increments_per_repartition(self, cluster):
        assert cluster.partition_epoch == 0
        cluster.repartition("refined", seed=0)
        cluster.repartition("chunk", seed=0)
        report = cluster.repartition("hash", seed=0)
        assert cluster.partition_epoch == 3
        assert report.epoch == 3


class TestEagerCacheInvalidation:
    def test_registered_engine_cache_reclaimed(self, graph, cluster):
        queries = per_class_workload(graph, 4, seed=3)["disReach"]
        engine = BatchQueryEngine(cluster)
        engine.run_batch(queries)
        assert len(engine.cache) > 0
        invalidations_before = engine.cache.invalidations
        cluster.repartition("refined", seed=0)
        # version keying already made them unreachable; registration means
        # the dead entries were also physically dropped
        assert len(engine.cache) == 0
        assert engine.cache.invalidations > invalidations_before
        engine.cache.check_index()

    def test_dropped_cache_deregisters(self, graph, cluster):
        engine = BatchQueryEngine(cluster)
        engine.run_batch(per_class_workload(graph, 2, seed=4)["disReach"])
        del engine
        cluster.repartition("refined", seed=0)  # must not blow up
