"""Unit tests for the partitioning strategies."""

import pytest

from repro.errors import FragmentationError
from repro.graph import erdos_renyi
from repro.partition import (
    PARTITIONERS,
    bfs_partition,
    build_fragmentation,
    chunk_partition,
    check_fragmentation,
    get_partitioner,
    greedy_edge_cut_partition,
    hash_partition,
    random_partition,
)
from repro.partition.partitioners import call_partitioner


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 360, seed=4)


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
class TestAllPartitioners:
    def test_covers_all_nodes(self, name, graph):
        assignment = PARTITIONERS[name](graph, 5)
        assert set(assignment) == set(graph.nodes())

    def test_valid_fragment_ids(self, name, graph):
        assignment = PARTITIONERS[name](graph, 5)
        assert all(0 <= fid < 5 for fid in assignment.values())

    def test_builds_valid_fragmentation(self, name, graph):
        assignment = PARTITIONERS[name](graph, 5)
        frag = build_fragmentation(graph, assignment, 5)
        check_fragmentation(graph, frag)

    def test_k_one_puts_everything_together(self, name, graph):
        assignment = PARTITIONERS[name](graph, 1)
        assert set(assignment.values()) == {0}

    def test_rejects_zero_fragments(self, name, graph):
        with pytest.raises(FragmentationError):
            PARTITIONERS[name](graph, 0)


class TestSpecifics:
    def test_random_deterministic_by_seed(self, graph):
        assert random_partition(graph, 4, seed=9) == random_partition(graph, 4, seed=9)
        assert random_partition(graph, 4, seed=1) != random_partition(graph, 4, seed=2)

    def test_hash_is_stable(self, graph):
        assert hash_partition(graph, 4) == hash_partition(graph, 4)

    def test_chunk_is_balanced(self, graph):
        assignment = chunk_partition(graph, 4)
        sizes = [list(assignment.values()).count(i) for i in range(4)]
        assert max(sizes) - min(sizes) <= 1 or max(sizes) == 30

    def test_chunk_is_contiguous(self, graph):
        assignment = chunk_partition(graph, 4)
        order = list(graph.nodes())
        fids = [assignment[n] for n in order]
        assert fids == sorted(fids)

    def test_bfs_respects_capacity(self, graph):
        assignment = bfs_partition(graph, 4, seed=1)
        sizes = [list(assignment.values()).count(i) for i in range(4)]
        assert max(sizes) <= -(-graph.num_nodes // 4) + 1

    def test_greedy_cuts_fewer_edges_than_random(self):
        # A graph with clear community structure: two cliques + one bridge.
        from repro.graph import DiGraph

        g = DiGraph()
        for i in range(20):
            g.add_node(i)
        for i in range(10):
            for j in range(10):
                if i != j:
                    g.add_edge(i, j)
                    g.add_edge(10 + i, 10 + j)
        g.add_edge(0, 10)

        def cut(assignment):
            return sum(1 for u, v in g.edges() if assignment[u] != assignment[v])

        # LDG is a streaming heuristic — individual stream orders can lose,
        # so compare the average cut across seeds.
        seeds = range(6)
        greedy_cut = sum(
            cut(greedy_edge_cut_partition(g, 2, seed=s)) for s in seeds
        ) / len(seeds)
        random_cut = sum(cut(random_partition(g, 2, seed=s)) for s in seeds) / len(seeds)
        assert greedy_cut < random_cut

    def test_get_partitioner_unknown(self):
        with pytest.raises(FragmentationError):
            get_partitioner("nope")

    def test_get_partitioner_known(self):
        assert get_partitioner("random") is random_partition


class TestCallPartitioner:
    """Signature-based seed forwarding: the partitioner runs exactly once."""

    def test_forwards_seed_when_accepted(self, graph):
        calls = []

        def with_seed(g, k, seed=0):
            calls.append(seed)
            return {node: 0 for node in g.nodes()}

        call_partitioner(with_seed, graph, 1, seed=7)
        assert calls == [7]

    def test_omits_seed_when_not_accepted(self, graph):
        calls = []

        def without_seed(g, k):
            calls.append(None)
            return {node: 0 for node in g.nodes()}

        call_partitioner(without_seed, graph, 1, seed=7)
        assert calls == [None]

    def test_internal_type_error_propagates_after_one_call(self, graph):
        calls = []

        def buggy(g, k, seed=0):
            calls.append(seed)
            raise TypeError("internal bug, not a signature mismatch")

        with pytest.raises(TypeError, match="internal bug"):
            call_partitioner(buggy, graph, 2, seed=3)
        assert calls == [3]  # invoked exactly once, error not masked
