"""Property tests: every local-evaluation engine computes the same answers.

The paper's Section 3 remark lets sites plug in any reachability index for
``des(v, Fi)`` checks.  These properties pin the contract: whatever the
engine (shared sweep, TC matrix, GRAIL, 2-hop, BFS), the produced equations
are identical — so the index choice is purely a performance knob.
"""

from hypothesis import given, settings, strategies as st

from repro.core.bounded import local_eval_bounded
from repro.core.queries import BoundedReachQuery, ReachQuery
from repro.core.reachability import ReachPartialAnswer, local_eval_reach
from repro.distributed import payload_size
from repro.graph import DiGraph
from repro.index import (
    BFSOracle,
    GrailOracle,
    TransitiveClosureOracle,
    TwoHopOracle,
)
from repro.index.distance import BFSDistanceOracle, DistanceMatrixOracle
from repro.partition import build_fragmentation


@st.composite
def fragmented_graphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    g = DiGraph()
    for i in range(n):
        g.add_node(i, label="L")
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    k = draw(st.integers(min_value=1, max_value=3))
    assignment = {node: node % k for node in g.nodes()}
    fragmentation = build_fragmentation(g, assignment, k)
    s = draw(st.integers(0, n - 1))
    t = draw(st.integers(0, n - 1))
    return g, fragmentation, s, t


@given(fragmented_graphs())
@settings(max_examples=50, deadline=None)
def test_reach_engines_agree(case):
    _, fragmentation, s, t = case
    query = ReachQuery(s, t)
    for fragment in fragmentation:
        reference = local_eval_reach(fragment, query)
        for oracle in (BFSOracle, TransitiveClosureOracle, GrailOracle, TwoHopOracle):
            assert local_eval_reach(fragment, query, oracle) == reference, oracle


@given(fragmented_graphs(), st.integers(0, 6))
@settings(max_examples=50, deadline=None)
def test_distance_engines_agree(case, bound):
    _, fragmentation, s, t = case
    query = BoundedReachQuery(s, t, bound)
    for fragment in fragmentation:
        reference = {
            k: sorted(v, key=repr)
            for k, v in local_eval_bounded(fragment, query).items()
        }
        for oracle in (BFSDistanceOracle, DistanceMatrixOracle):
            got = {
                k: sorted(v, key=repr)
                for k, v in local_eval_bounded(fragment, query, oracle).items()
            }
            assert got == reference, oracle


@given(fragmented_graphs())
@settings(max_examples=50, deadline=None)
def test_partial_answer_payload_is_positive_and_monotone(case):
    _, fragmentation, s, t = case
    query = ReachQuery(s, t)
    for fragment in fragmentation:
        equations = local_eval_reach(fragment, query)
        size = payload_size(ReachPartialAnswer(equations))
        assert size >= 2
        grown = dict(equations)
        grown["extra-row"] = frozenset({"extra-col"})
        assert payload_size(ReachPartialAnswer(grown)) > size
