"""Unit tests for disReachm (the Pregel-style baseline)."""

import pytest

from repro.baselines import dis_reach_m
from repro.core import dis_reach, reachable
from repro.distributed import MessageKind
from repro.errors import QueryError


class TestAnswers:
    def test_figure1(self, figure1):
        _, _, cluster = figure1
        assert dis_reach_m(cluster, ("Ann", "Mark")).answer
        assert not dis_reach_m(cluster, ("Mark", "Ann")).answer

    def test_source_equals_target(self, figure1):
        _, _, cluster = figure1
        result = dis_reach_m(cluster, ("Pat", "Pat"))
        assert result.answer and result.details.get("trivial")

    def test_unknown_endpoint(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_reach_m(cluster, ("Ghost", "Ann"))

    def test_agrees_with_disreach(self, random_case):
        for seed in range(4):
            graph, cluster = random_case(seed)
            nodes = sorted(graph.nodes())
            for s in nodes[::6]:
                for t in nodes[::7]:
                    expected = reachable(graph, s, t)
                    assert dis_reach_m(cluster, (s, t)).answer == expected
                    assert dis_reach(cluster, (s, t)).answer == expected


class TestProtocol:
    def test_true_reported_to_master(self, figure1):
        _, _, cluster = figure1
        result = dis_reach_m(cluster, ("Ann", "Mark"))
        controls = [
            m for m in result.stats.messages if m.kind == MessageKind.CONTROL
        ]
        assert len(controls) == 1  # the "T" report from Mark's site

    def test_idle_reported_when_false(self, figure1):
        _, _, cluster = figure1
        result = dis_reach_m(cluster, ("Mark", "Ann"))
        controls = [
            m for m in result.stats.messages if m.kind == MessageKind.CONTROL
        ]
        assert len(controls) == cluster.num_sites  # one "idle" per worker

    def test_visits_unbounded_by_protocol(self, figure1):
        """Cross-fragment activations are visits: strictly more than 1/site
        on the Figure 1 query (the paper's central criticism)."""
        _, _, cluster = figure1
        result = dis_reach_m(cluster, ("Ann", "Mark"))
        assert result.stats.total_visits > cluster.num_sites

    def test_activation_happens_once_per_node(self, figure1):
        graph, _, cluster = figure1
        result = dis_reach_m(cluster, ("Ann", "Tom"))  # unreachable: full BFS
        assert not result.answer
        from repro.graph import descendants

        expected = len(descendants(graph, "Ann")) + 1
        assert result.details["activated"] == expected

    def test_supersteps_reported(self, figure1):
        _, _, cluster = figure1
        result = dis_reach_m(cluster, ("Ann", "Mark"))
        assert result.details["supersteps"] >= 3
