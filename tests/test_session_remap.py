"""Batched session remaps through the serving engine (DESIGN.md §8).

The contract under test — the acceptance bar of the session-remap
batching:

* after a repartition, every open session's standing answer and its
  ``last_remap`` modeled stats are **bit-identical** whether the cluster
  remapped the sessions as one batched ``execute_plans`` round (the
  default) or one at a time (``batch_remaps=False``) — on all three
  executor backends;
* the batch actually dedupes: on a shared-fragment workload the distinct
  per-fragment tasks executed stay strictly below ``sessions x
  fragments``, and ``remap_visits_saved`` is positive;
* the batched remap shares the registered serving cache, so a query
  served right after a repartition hits the remap's partials;
* the incremental-remap delta: fragments whose boundary anatomy the
  repartition left unchanged reuse their pre-move session partials
  (``RepartitionReport.remap_fragments_reused``), and the reused partials
  are bit-identical to a from-scratch evaluation on the new
  fragmentation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reachable, regular_reachable
from repro.core.engine import evaluate
from repro.core.incremental import IncrementalReachSession, IncrementalRegularSession
from repro.core.queries import ReachQuery
from repro.distributed import SimulatedCluster
from repro.distributed.executors import EXECUTORS
from repro.graph import erdos_renyi
from repro.serving import BatchQueryEngine

N = 24
REGEX = "L0* | L1+"
BACKENDS = sorted(EXECUTORS)


def _modeled_signature(result):
    """The deterministic, backend-independent part of a run's stats."""
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
        stats.supersteps,
    )


def _cluster(seed=3, k=3, executor=None):
    graph = erdos_renyi(N, 2 * N, seed=seed, num_labels=3)
    cluster = SimulatedCluster.from_graph(
        graph, k, partitioner="hash", seed=0, executor=executor
    )
    return graph, cluster


def _open_sessions(cluster, specs):
    """One initialized session per (is_regular, source, target) spec."""
    sessions = []
    for is_regular, source, target in specs:
        if is_regular:
            session = IncrementalRegularSession(cluster, (source, target, REGEX))
        else:
            session = IncrementalReachSession(cluster, (source, target))
        session.initialize()
        sessions.append(session)
    return sessions


class TestBatchedEqualsPerSession:
    """Hypothesis: batched and per-session remaps are bit-identical."""

    @settings(max_examples=20, deadline=None)
    @given(
        specs=st.lists(
            st.tuples(
                st.booleans(), st.integers(0, N - 1), st.integers(0, N - 1)
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_standing_answers_and_stats_match(self, specs):
        specs = [spec for spec in specs if spec[1] != spec[2]]
        if not specs:
            return
        graph, batched_cluster = _cluster()
        _, reference_cluster = _cluster()
        batched = _open_sessions(batched_cluster, specs)
        reference = _open_sessions(reference_cluster, specs)

        report = batched_cluster.repartition("refined", seed=0)
        reference_cluster.repartition("refined", seed=0, batch_remaps=False)

        assert report.sessions_remapped == len(specs)
        assert report.remap_visits_saved >= 0
        assert report.remap_tasks <= len(specs) * len(batched_cluster.fragmentation)
        for b_session, r_session, (is_regular, source, target) in zip(
            batched, reference, specs
        ):
            if is_regular:
                expected = regular_reachable(graph, source, target, REGEX)
            else:
                expected = reachable(graph, source, target)
            assert b_session.answer == r_session.answer == expected
            assert _modeled_signature(b_session.last_remap) == _modeled_signature(
                r_session.last_remap
            )
            assert b_session._partials == r_session._partials
            assert b_session._epoch == r_session._epoch == 1


class TestDedupAndBackends:
    """Shared-fragment workload: the dedup must measurably fire."""

    #: Four standing queries over one shared pool — two literal duplicates
    #: plus two more that share all non-endpoint fragments.
    SPECS = [
        (False, 0, N - 1),
        (False, 0, N - 1),
        (False, 1, N - 1),
        (True, 0, N - 1),
    ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dedup_fires_on_every_backend(self, backend):
        graph, cluster = _cluster(executor=backend)
        sessions = _open_sessions(cluster, self.SPECS)
        report = cluster.repartition("refined", seed=0)

        assert report.sessions_remapped == len(self.SPECS)
        # Dedup: strictly fewer distinct tasks than sessions x fragments,
        # and the batched round visited strictly fewer sites than a
        # per-session sweep would have.
        assert report.remap_tasks < len(self.SPECS) * len(cluster.fragmentation)
        assert report.remap_visits_saved > 0
        assert report.remap_rounds == 1
        for session, (is_regular, source, target) in zip(sessions, self.SPECS):
            if is_regular:
                expected = regular_reachable(graph, source, target, REGEX)
            else:
                expected = reachable(graph, source, target)
            assert session.answer == expected
            # From-scratch evaluation agrees on the same backend.
            assert evaluate(cluster, session.query).answer == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_last_remap_matches_per_session_path(self, backend):
        _, batched_cluster = _cluster(executor=backend)
        _, reference_cluster = _cluster(executor=backend)
        batched = _open_sessions(batched_cluster, self.SPECS)
        reference = _open_sessions(reference_cluster, self.SPECS)
        batched_cluster.repartition("refined", seed=0)
        reference_cluster.repartition("refined", seed=0, batch_remaps=False)
        for b_session, r_session in zip(batched, reference):
            assert _modeled_signature(b_session.last_remap) == _modeled_signature(
                r_session.last_remap
            )

    def test_summary_mentions_remap(self):
        _, cluster = _cluster()
        sessions = _open_sessions(cluster, self.SPECS)  # kept alive: weak registry
        report = cluster.repartition("refined", seed=0)
        assert all(session.remaps == 1 for session in sessions)
        assert "remapped 4 session(s)" in report.summary()


class TestIncrementalRemapDelta:
    """Anatomy-preserved fragments reuse pre-move partials — identically."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 4),
        specs=st.lists(
            st.tuples(
                st.booleans(), st.integers(0, N - 1), st.integers(0, N - 1)
            ),
            min_size=1,
            max_size=4,
        ),
        moved=st.sets(st.integers(0, N - 1), max_size=6),
    )
    def test_reused_partials_match_from_scratch(self, seed, specs, moved):
        """Reuse is an identity: a remap that keeps some fragments' partials
        produces the same standing answers AND the same per-fragment
        equations as initializing fresh sessions directly on the new
        fragmentation, and the report counts exactly the anatomy-preserved
        fragments per session."""
        specs = [spec for spec in specs if spec[1] != spec[2]]
        if not specs:
            return
        graph, cluster = _cluster(seed=seed)
        sessions = _open_sessions(cluster, specs)
        k = len(cluster.fragmentation)
        base = dict(cluster.fragmentation.placement)
        target = dict(base)
        for node in moved:
            target[node] = (base[node] + 1) % k
        report = cluster.repartition(target, num_fragments=k)

        # A fragment's anatomy survives iff no node entered or left it.
        touched = {base[node] for node in moved} | {target[node] for node in moved}
        preserved = [fid for fid in range(k) if fid not in touched]
        assert report.remap_fragments_reused == len(preserved) * len(specs)

        reference_cluster = SimulatedCluster.from_graph(
            graph, k, partitioner=target
        )
        reference = _open_sessions(reference_cluster, specs)
        for session, ref_session in zip(sessions, reference):
            assert session.answer == ref_session.answer
            assert session._partials == ref_session._partials
            assert session._remap_reuse == {}  # drained by the remap

    def test_identity_repartition_reuses_everything(self):
        _, cluster = _cluster()
        sessions = _open_sessions(cluster, [(False, 0, N - 1), (True, 1, N - 1)])
        assignment = dict(cluster.fragmentation.placement)
        report = cluster.repartition(
            assignment, num_fragments=len(cluster.fragmentation)
        )
        # Every fragment preserved, for both sessions: zero local-eval
        # tasks run, and the answers stand.
        assert report.remap_fragments_reused == len(cluster.fragmentation) * 2
        assert report.remap_tasks == 0
        assert all(session.remaps == 1 for session in sessions)
        assert "reused" in report.summary()

    def test_batched_matches_per_session_reuse(self):
        results = []
        for batch_remaps in (True, False):
            graph, cluster = _cluster()
            sessions = _open_sessions(cluster, [(False, 0, N - 1), (False, 1, 2)])
            target = dict(cluster.fragmentation.placement)
            target[0] = (target[0] + 1) % len(cluster.fragmentation)
            report = cluster.repartition(
                target,
                num_fragments=len(cluster.fragmentation),
                batch_remaps=batch_remaps,
            )
            results.append(
                (
                    report.remap_fragments_reused,
                    [session.answer for session in sessions],
                    [session._partials for session in sessions],
                    [_modeled_signature(session.last_remap) for session in sessions],
                )
            )
        assert results[0] == results[1]

    def test_mutation_after_reusing_remap_stays_sound(self):
        graph, cluster = _cluster()
        session = _open_sessions(cluster, [(False, 0, N - 1)])[0]
        assignment = dict(cluster.fragmentation.placement)
        cluster.repartition(assignment, num_fragments=len(cluster.fragmentation))
        assert session.last_remap_reused == len(cluster.fragmentation)
        # The standing query must keep tracking the mutated graph exactly.
        result = session.add_edge(0, N - 1)
        graph.add_edge(0, N - 1)
        assert result.answer is reachable(graph, 0, N - 1) is True
        session.remove_edge(0, N - 1)
        graph.remove_edge(0, N - 1)
        assert session.answer == reachable(graph, 0, N - 1)


class TestSharedServingCache:
    def test_remap_populates_registered_cache(self):
        _, cluster = _cluster()
        engine = BatchQueryEngine(cluster)
        query = ReachQuery(0, N - 1)
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        cluster.repartition("refined", seed=0)
        # The batched remap ran through the engine's registered cache, so
        # serving the same standing query right after needs zero new tasks.
        batch = engine.run_batch([query])
        assert batch.workload.tasks_executed == 0
        assert batch.answers == [session.answer]

    def test_uninitialized_sessions_skip_batch(self):
        _, cluster = _cluster()
        IncrementalReachSession(cluster, (0, N - 1))  # never initialized
        report = cluster.repartition("refined", seed=0)
        assert report.sessions_remapped == 0
        assert report.remap_tasks == 0
        assert report.remap_rounds == 0
