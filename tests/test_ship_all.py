"""Unit tests for the ship-all baselines (disReachn / disDistn / disRPQn)."""

import pytest

from repro.baselines import dis_dist_n, dis_reach_n, dis_rpq_n
from repro.core import bounded_reachable, reachable, regular_reachable
from repro.distributed import MessageKind
from repro.errors import QueryError


class TestAnswers:
    def test_figure1(self, figure1):
        _, _, cluster = figure1
        assert dis_reach_n(cluster, ("Ann", "Mark")).answer
        assert not dis_reach_n(cluster, ("Mark", "Ann")).answer
        assert dis_dist_n(cluster, ("Ann", "Mark", 6)).answer
        assert not dis_dist_n(cluster, ("Ann", "Mark", 5)).answer
        assert dis_rpq_n(cluster, ("Ann", "Mark", "DB* | HR*")).answer
        assert not dis_rpq_n(cluster, ("Ann", "Mark", "DB*")).answer

    def test_agree_with_centralized(self, random_case):
        graph, cluster = random_case(21)
        nodes = sorted(graph.nodes())
        for s in nodes[::6]:
            for t in nodes[::7]:
                assert dis_reach_n(cluster, (s, t)).answer == reachable(graph, s, t)
                assert (
                    dis_dist_n(cluster, (s, t, 4)).answer
                    == bounded_reachable(graph, s, t, 4)
                )
                assert (
                    dis_rpq_n(cluster, (s, t, "L0*")).answer
                    == regular_reachable(graph, s, t, "L0*")
                )

    def test_unknown_endpoint(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_reach_n(cluster, ("Ann", "Ghost"))


class TestCostShape:
    def test_ships_whole_fragments(self, figure1):
        graph, _, cluster = figure1
        result = dis_reach_n(cluster, ("Ann", "Mark"))
        data = [m for m in result.stats.messages if m.kind == MessageKind.DATA]
        assert len(data) == 3
        total = sum(m.size_bytes for m in data)
        # Shipping every local graph moves at least the whole of G.
        assert total >= graph.payload_size() * 0.9

    def test_traffic_exceeds_partial_evaluation(self, figure1):
        from repro.core import dis_reach

        _, _, cluster = figure1
        shipall = dis_reach_n(cluster, ("Ann", "Mark"))
        partial = dis_reach(cluster, ("Ann", "Mark"))
        assert shipall.stats.traffic_bytes > partial.stats.traffic_bytes

    def test_visits_each_site_once(self, figure1):
        _, _, cluster = figure1
        result = dis_reach_n(cluster, ("Ann", "Mark"))
        assert result.stats.max_visits_per_site == 1

    def test_restored_size_reported(self, figure1):
        graph, _, cluster = figure1
        result = dis_reach_n(cluster, ("Ann", "Mark"))
        assert result.details["restored_size"] == graph.size
