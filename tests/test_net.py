"""Networked executor backend: framing, fragment shipping, failure model.

Three layers, matching DESIGN.md §10:

* **framing** — the length-prefixed pickle wire format's error contract:
  clean close between frames is :class:`EOFError`, everything torn or
  malformed is a :class:`~repro.errors.QueryError` naming what was wrong;
* **fragment store / handshake** — one generation per fragment identity at
  the broker, version/stamp changes retiring stale copies, ship-once
  addressing by :class:`~repro.net.framing.FragmentRef`;
* **failure model** — task exceptions re-raise the submission-order-first
  one (the sequential semantics); broker death degrades to retry-then-
  inline evaluation with bit-identical answers, never a wrong one, and the
  spawned pool replaces dead brokers at the next round.

The cross-backend identity suites (test_executors, test_batch_equivalence,
test_kernels) already sweep the ``socket`` backend via ``EXECUTORS``; the
hypothesis test here adds the repartition/mutation axis on top.
"""

from __future__ import annotations

import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.core.queries import BoundedReachQuery, ReachQuery, RegularReachQuery
from repro.distributed import SimulatedCluster
from repro.distributed.executors import SocketExecutor
from repro.errors import DistributedError, QueryError
from repro.graph import erdos_renyi
from repro.net.broker import FragmentStore, _run_request, resolve_refs
from repro.net.framing import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    FragmentRef,
    encode_frame,
    guard_bind_host,
    recv_frame,
    send_frame,
)
from repro.partition import build_fragmentation, random_partition
from repro.workload.paper_example import figure1_fragmentation


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        with a, b:
            payload = {"op": "run", "tasks": [(0, None, (1, "x"))]}
            send_frame(a, payload)
            assert recv_frame(b) == payload

    def test_clean_close_between_frames_raises_eof(self):
        a, b = _pair()
        with b:
            a.close()
            with pytest.raises(EOFError):
                recv_frame(b)

    def test_bad_magic_is_a_query_error(self):
        a, b = _pair()
        with b:
            a.sendall(b"JUNK" + struct.pack(">I", 0))
            a.close()
            with pytest.raises(QueryError, match="bad magic"):
                recv_frame(b)

    def test_truncated_header_is_a_query_error(self):
        a, b = _pair()
        with b:
            a.sendall(MAGIC[:2])
            a.close()
            with pytest.raises(QueryError, match="truncated frame"):
                recv_frame(b)

    def test_truncated_payload_is_a_query_error(self):
        frame = encode_frame({"op": "ping"})
        assert len(frame) > HEADER_BYTES + 3
        a, b = _pair()
        with b:
            a.sendall(frame[:-3])
            a.close()
            with pytest.raises(QueryError, match="truncated frame"):
                recv_frame(b)

    def test_oversize_declared_length_rejected_before_allocation(self):
        a, b = _pair()
        with b:
            a.sendall(MAGIC + struct.pack(">I", MAX_FRAME_BYTES + 1))
            a.close()
            with pytest.raises(QueryError, match="exceeds"):
                recv_frame(b)

    def test_garbage_payload_is_a_query_error(self):
        a, b = _pair()
        with b:
            a.sendall(MAGIC + struct.pack(">I", 4) + b"\xff\xff\xff\xff")
            a.close()
            with pytest.raises(QueryError, match="malformed frame payload"):
                recv_frame(b)

    def test_unpicklable_payload_is_a_query_error(self):
        with pytest.raises(QueryError, match="unpicklable"):
            encode_frame(socket.socket())


class TestBindGuard:
    def test_loopback_hosts_pass_silently(self, capsys):
        for host in ("127.0.0.1", "127.1.2.3", "localhost", "::1"):
            guard_bind_host(host, False, "test")
        assert capsys.readouterr().err == ""

    def test_non_loopback_refused_without_opt_in(self):
        for host in ("0.0.0.0", "::", "192.168.1.5", ""):
            with pytest.raises(QueryError, match="refusing to bind"):
                guard_bind_host(host, False, "test")

    def test_opt_in_downgrades_refusal_to_warning(self, capsys):
        guard_bind_host("0.0.0.0", True, "test")
        assert "WARNING" in capsys.readouterr().err

    def test_broker_cli_refuses_remote_listen(self, capsys):
        from repro.net.broker import main

        assert main(["--listen", "0", "--host", "0.0.0.0"]) == 2
        assert "refusing to bind" in capsys.readouterr().err

    def test_serve_cli_refuses_remote_bind(self, capsys):
        from repro.net.server import main

        # The guard fires before the graph file would be opened.
        assert main(["--graph", "does-not-exist", "--host", "0.0.0.0"]) == 2
        assert "refusing to bind" in capsys.readouterr().err


class TestFragmentStore:
    def test_missing_key_is_a_query_error(self):
        store = FragmentStore()
        with pytest.raises(QueryError, match="no fragment for key"):
            store.resolve(("v", 1, 0, 0, 0))

    def test_new_version_retires_the_old_generation(self):
        store = FragmentStore()
        store.install(("v", 1, 0, 1, 5), "old")
        store.install(("v", 1, 0, 2, 6), "new")
        assert len(store) == 1
        assert store.resolve(("v", 1, 0, 2, 6)) == "new"
        with pytest.raises(QueryError):
            store.resolve(("v", 1, 0, 1, 5))

    def test_distinct_fragments_coexist(self):
        store = FragmentStore()
        store.install(("v", 1, 0, 1, 0), "f0")
        store.install(("v", 1, 1, 1, 0), "f1")
        store.install(("o", 9, 3), "free")
        assert len(store) == 3

    def test_new_stamp_retires_old_object_key(self):
        store = FragmentStore()
        store.install(("o", 9, 3), "old")
        store.install(("o", 9, 4), "new")
        assert len(store) == 1
        assert store.resolve(("o", 9, 4)) == "new"

    def test_evict_is_idempotent(self):
        store = FragmentStore()
        store.install(("o", 9, 3), "frag")
        store.evict(("o", 9, 3))
        store.evict(("o", 9, 3))
        assert len(store) == 0

    def test_resolve_refs_walks_nested_containers(self):
        store = FragmentStore()
        store.install(("o", 7, 0), "frag")
        ref = FragmentRef(("o", 7, 0))
        args = (ref, [ref, {"k": ref}], "leaf", 3)
        assert resolve_refs(args, store) == (
            "frag",
            ["frag", {"k": "frag"}],
            "leaf",
            3,
        )

    def test_resolve_refs_shares_untouched_structure(self):
        store = FragmentStore()
        untouched = ("a", ("b",))
        assert resolve_refs(untouched, store) is untouched


def _modeled_signature(result):
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
        stats.supersteps,
    )


class TestRunRequest:
    def test_missing_fragment_error_carries_the_task_index(self):
        # Resolution failures must land on the failing task's index, not
        # -1, so the coordinator attributes the error correctly.
        store = FragmentStore()
        request = {
            "op": "run",
            "tasks": [
                (0, len, ((),)),
                (1, len, (FragmentRef(("o", 99, 0)),)),
            ],
        }
        response = _run_request(request, store)
        assert isinstance(response["error"], QueryError)
        assert response["error_index"] == 1
        assert len(response["results"]) == 1


class TestFragmentShipping:
    def test_fragment_ships_once_then_travels_by_key(self):
        executor = SocketExecutor(num_brokers=1, shared=False)
        cluster = SimulatedCluster(figure1_fragmentation(), executor=executor)
        try:
            evaluate(cluster, ReachQuery("Ann", "Mark"))
            link = executor._own_pool._links[0]
            keys_after_first = set(link.shipped)
            assert keys_after_first  # the handshake actually shipped
            evaluate(cluster, ReachQuery("Pat", "Mark"))
            assert set(link.shipped) == keys_after_first
        finally:
            executor.close()

    def test_mutation_changes_the_wire_key(self):
        executor = SocketExecutor(num_brokers=1, shared=False)
        cluster = SimulatedCluster(figure1_fragmentation(), executor=executor)
        try:
            before = evaluate(cluster, ReachQuery("Ann", "Mark"))
            link = executor._own_pool._links[0]
            keys_before = set(link.shipped)
            cluster.apply_edge_mutation("Ann", "Mark", add=True)
            after = evaluate(cluster, ReachQuery("Ann", "Mark"))
            assert after.answer is True
            assert set(link.shipped) != keys_before
            # sanity: the pre-mutation run answered the original instance
            assert before.answer is True
        finally:
            executor.close()

    def test_repartition_changes_every_wire_key(self):
        executor = SocketExecutor(num_brokers=1, shared=False)
        cluster = SimulatedCluster(figure1_fragmentation(), executor=executor)
        try:
            reference = _modeled_signature(
                evaluate(cluster, ReachQuery("Ann", "Mark"))
            )
            link = executor._own_pool._links[0]
            keys_before = set(link.shipped)
            cluster.repartition("chunk")
            sequential = SimulatedCluster(cluster.fragmentation)
            expected = _modeled_signature(
                evaluate(sequential, ReachQuery("Ann", "Mark"))
            )
            repartitioned = _modeled_signature(
                evaluate(cluster, ReachQuery("Ann", "Mark"))
            )
            assert repartitioned == expected
            # Every fragment re-shipped under a fresh (version-bumped) key;
            # the broker's store retired the old generations by identity.
            new_keys = set(link.shipped) - keys_before
            assert len(new_keys) == len(keys_before)
            assert reference[0] == expected[0]  # the answer itself is stable
        finally:
            executor.close()


def _explode_at(sid):
    raise ValueError(f"boom {sid}")


class TestFailureModel:
    def test_task_exception_reraises_submission_order_first(self):
        cluster = SimulatedCluster(figure1_fragmentation(), executor="socket")
        run = cluster.start_run("x")
        with pytest.raises(ValueError, match="boom 0"):
            with run.parallel_phase() as phase:
                phase.map(_explode_at, [(sid, (sid,)) for sid in range(3)])

    def test_broker_crash_degrades_then_respawns(self):
        executor = SocketExecutor(num_brokers=1, shared=False, timeout=10.0)
        cluster = SimulatedCluster(figure1_fragmentation(), executor=executor)
        sequential = SimulatedCluster(figure1_fragmentation())
        query = ReachQuery("Ann", "Mark")
        reference = _modeled_signature(evaluate(sequential, query))
        try:
            assert _modeled_signature(evaluate(cluster, query)) == reference
            assert executor.degraded_tasks == 0

            # Kill the lone broker: the next round's transport fails, the
            # retry finds no surviving broker, and the tasks degrade to
            # inline evaluation — same answer, same modeled stats.
            link = executor._own_pool._links[0]
            link.proc.kill()
            link.proc.wait()
            assert _modeled_signature(evaluate(cluster, query)) == reference
            assert executor.degraded_tasks > 0

            # The spawned pool replaces the dead broker lazily: a later
            # round is served remotely again (no further degradations).
            degraded = executor.degraded_tasks
            assert _modeled_signature(evaluate(cluster, query)) == reference
            assert executor.degraded_tasks == degraded
        finally:
            executor.close()

    def test_dead_external_address_fails_fast(self):
        victim = socket.socket()
        victim.bind(("127.0.0.1", 0))
        port = victim.getsockname()[1]
        victim.close()  # nothing listens here any more
        executor = SocketExecutor(addresses=[f"127.0.0.1:{port}"], shared=False)
        try:
            with pytest.raises(DistributedError, match="cannot reach broker"):
                evaluate(
                    SimulatedCluster(figure1_fragmentation(), executor=executor),
                    ReachQuery("Ann", "Mark"),
                )
        finally:
            executor.close()

    def test_rejects_zero_brokers(self):
        with pytest.raises(DistributedError, match="num_brokers"):
            SocketExecutor(num_brokers=0)


class TestSocketIdentityProperties:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=2, max_value=4),
    )
    def test_identical_to_sequential_across_repartitions(self, seed, k):
        """Socket answers and modeled stats match sequential for every query
        class, before and after a repartition (fresh wire keys)."""
        graph = erdos_renyi(24, 48, seed=seed, num_labels=3)
        nodes = sorted(graph.nodes(), key=repr)
        source, target = nodes[0], nodes[-1]
        queries = [
            ReachQuery(source, target),
            BoundedReachQuery(source, target, 4),
            RegularReachQuery(source, target, "L0* | L1*"),
        ]
        assignment = random_partition(graph, k, seed=seed)
        fragmentation = build_fragmentation(graph, assignment, k)
        sequential = SimulatedCluster(fragmentation)
        networked = SimulatedCluster(fragmentation, executor="socket")
        for query in queries:
            assert _modeled_signature(
                evaluate(networked, query)
            ) == _modeled_signature(evaluate(sequential, query))
        sequential.repartition("chunk")
        networked.repartition("chunk")
        for query in queries:
            assert _modeled_signature(
                evaluate(networked, query)
            ) == _modeled_signature(evaluate(sequential, query))


class TestOracleOverSocket:
    """Plans carry the oracle *name*: it must survive the wire intact."""

    @staticmethod
    def _spawn_brokers(count=2, timeout=20.0):
        import subprocess
        import sys
        import time as time_mod

        procs, addresses = [], []
        for _ in range(count):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.net.broker", "--listen", str(port)],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
            addresses.append(f"127.0.0.1:{port}")
        deadline = time_mod.monotonic() + timeout
        for address in addresses:
            host, _, port = address.rpartition(":")
            while True:
                try:
                    socket.create_connection((host, int(port)), timeout=1.0).close()
                    break
                except OSError:
                    if time_mod.monotonic() > deadline:
                        for proc in procs:
                            proc.kill()
                        pytest.fail(f"broker at {address} never came up")
        return procs, addresses

    def test_tol_plan_identical_on_external_brokers(self):
        """A plan with ``oracle="tol"`` is bit-identical sequential vs socket
        against externally managed brokers, across an edge mutation (new
        stamp, new wire key, maintained index on the coordinator side)."""
        from repro.core.reachability import dis_reach

        procs, addresses = self._spawn_brokers()
        executor = SocketExecutor(addresses=addresses, shared=False, timeout=15.0)
        try:
            networked = SimulatedCluster(figure1_fragmentation(), executor=executor)
            sequential = SimulatedCluster(figure1_fragmentation())
            queries = [ReachQuery("Ann", "Mark"), ReachQuery("Mark", "Ann")]
            for oracle in (None, "tol"):
                for query in queries:
                    assert _modeled_signature(
                        dis_reach(networked, query, oracle=oracle)
                    ) == _modeled_signature(dis_reach(sequential, query, oracle=oracle))
            for cluster in (networked, sequential):
                cluster.apply_edge_mutation("Ann", "Mark", add=True)
            for query in queries:
                reference = _modeled_signature(dis_reach(sequential, query))
                assert _modeled_signature(
                    dis_reach(networked, query, oracle="tol")
                ) == reference
                assert _modeled_signature(
                    dis_reach(sequential, query, oracle="tol")
                ) == reference
        finally:
            executor.close()
            for proc in procs:
                proc.kill()
                proc.wait()
