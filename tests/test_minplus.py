"""Unit tests for the min-plus equation system (evalDGd)."""

import pytest

from repro.core import TARGET, MinPlusSystem


@pytest.fixture
def paper_system():
    """The weighted dependency graph of Example 5 / Fig. 5(b)."""
    mps = MinPlusSystem()
    mps.add_equation("Ann", [("Pat", 2.0), ("Mat", 2.0)])
    mps.add_equation("Fred", [("Emmy", 1.0)])
    mps.add_equation("Mat", [("Fred", 1.0)])
    mps.add_equation("Jack", [("Fred", 3.0)])
    mps.add_equation("Emmy", [("Fred", 3.0), ("Ross", 1.0)])
    mps.add_equation("Ross", [(TARGET, 1.0)])
    mps.add_equation("Pat", [("Jack", 1.0)])
    return mps


class TestConstruction:
    def test_min_merge_on_duplicates(self):
        mps = MinPlusSystem()
        mps.add_equation("x", [("y", 5.0)])
        mps.add_equation("x", [("y", 3.0)])
        mps.add_equation("x", [("y", 7.0)])
        assert mps.terms_of("x") == {"y": 3.0}

    def test_rejects_negative(self):
        mps = MinPlusSystem()
        with pytest.raises(ValueError):
            mps.add_equation("x", [("y", -1.0)])

    def test_views(self, paper_system):
        assert len(paper_system) == 7
        assert paper_system.num_terms == 9
        assert "Ann" in paper_system
        assert "zzz" not in paper_system


class TestDijkstraSolver:
    def test_paper_example5(self, paper_system):
        """dist(Ann, Mark) = 6 — the Example 5 answer."""
        assert paper_system.solve_distance("Ann") == pytest.approx(6.0)

    def test_bound_respected_by_cutoff(self, paper_system):
        assert paper_system.solve_distance("Ann", cutoff=6.0) == pytest.approx(6.0)
        assert paper_system.solve_distance("Ann", cutoff=5.0) is None

    def test_unreachable_target(self):
        mps = MinPlusSystem()
        mps.add_equation("x", [("y", 1.0)])
        assert mps.solve_distance("x") is None

    def test_source_is_target(self):
        mps = MinPlusSystem()
        assert mps.solve_distance(TARGET) == 0.0

    def test_takes_shortest_of_alternatives(self):
        mps = MinPlusSystem()
        mps.add_equation("s", [("a", 1.0), (TARGET, 10.0)])
        mps.add_equation("a", [(TARGET, 2.0)])
        assert mps.solve_distance("s") == pytest.approx(3.0)

    def test_cycle_does_not_loop(self):
        mps = MinPlusSystem()
        mps.add_equation("a", [("b", 1.0)])
        mps.add_equation("b", [("a", 1.0), (TARGET, 5.0)])
        assert mps.solve_distance("a") == pytest.approx(6.0)


class TestBellmanFordOracle:
    def test_agrees_on_paper_system(self, paper_system):
        assert paper_system.solve_bellman_ford("Ann") == pytest.approx(6.0)

    def test_agrees_on_unreachable(self):
        mps = MinPlusSystem()
        mps.add_equation("x", [("y", 1.0)])
        assert mps.solve_bellman_ford("x") is None


class TestWeightedDependencyGraph:
    def test_figure5b_shape(self, paper_system):
        gd, weights = paper_system.weighted_dependency_graph()
        assert gd.has_edge("Ann", "Mat")
        assert weights[("Ann", "Mat")] == 2.0
        assert gd.has_edge("Ross", TARGET)
        assert weights[("Ross", TARGET)] == 1.0
