"""Unit tests for Dijkstra / Bellman-Ford."""

import random

import pytest

from repro.graph import (
    bellman_ford,
    dijkstra,
    dijkstra_distance,
    erdos_renyi,
    graph_weighted_successors,
)


def _weighted(edges):
    adj = {}
    for u, v, w in edges:
        adj.setdefault(u, []).append((v, w))
    return lambda n: adj.get(n, [])


class TestDijkstra:
    def test_simple_path(self):
        succ = _weighted([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 5.0)])
        dist = dijkstra("a", succ)
        assert dist == {"a": 0.0, "b": 1.0, "c": 3.0}

    def test_target_early_exit(self):
        succ = _weighted([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)])
        assert dijkstra_distance("a", "c", succ) == 2.0

    def test_unreachable_none(self):
        succ = _weighted([("a", "b", 1.0)])
        assert dijkstra_distance("b", "a", succ) is None

    def test_cutoff(self):
        succ = _weighted([("a", "b", 2.0), ("b", "c", 2.0)])
        assert dijkstra_distance("a", "c", succ, cutoff=3.0) is None
        assert dijkstra_distance("a", "c", succ, cutoff=4.0) == 4.0

    def test_rejects_negative_weights(self):
        succ = _weighted([("a", "b", -1.0)])
        with pytest.raises(ValueError):
            dijkstra("a", succ)

    def test_unorderable_node_types(self):
        # Heap ties must not compare nodes: mix tuples and strings.
        succ = _weighted([("a", ("x", 1), 1.0), ("a", "b", 1.0)])
        dist = dijkstra("a", succ)
        assert dist[("x", 1)] == 1.0 and dist["b"] == 1.0


class TestBellmanFordAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dijkstra_on_random_graphs(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi(20, rng.randrange(10, 60), seed=seed)
        edges = [(u, v, float(rng.randrange(1, 10))) for u, v in g.edges()]
        succ = _weighted(edges)
        source = next(iter(g.nodes()))
        dd = dijkstra(source, succ)
        bf = bellman_ford(g.nodes(), edges, source)
        assert dd == bf


class TestGraphAdapter:
    def test_unit_weights(self, diamond):
        succ = graph_weighted_successors(diamond)
        assert dijkstra_distance("a", "d", succ) == 2.0

    def test_custom_weight(self, diamond):
        succ = graph_weighted_successors(diamond, weight=3.0)
        assert dijkstra_distance("a", "d", succ) == 6.0
