"""Shared fixtures: small graphs, clusters and deterministic randomness.

Reproducibility (the CI matrix depends on it):

* Hypothesis runs the ``repro-deterministic`` profile — ``derandomize=True``
  and no deadline, so every property test explores the same examples on
  every machine and Python version (override via ``HYPOTHESIS_PROFILE``);
* the global :mod:`random` generator is re-seeded before every test, so no
  test depends on how many tests ran before it;
* the ``slow`` marker (registered here and in ``pyproject.toml``) lets the
  matrix deselect long runs with ``-m "not slow"``;
* the ``network`` marker guards tests that download (SNAP datasets) — the
  default ``addopts`` in ``pyproject.toml`` deselects it, so tier-1 runs
  fully offline (opt in with ``-m network``).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.distributed import SimulatedCluster
from repro.graph import DiGraph, erdos_renyi
from repro.partition import build_fragmentation, random_partition
from repro.workload.paper_example import figure1_fragmentation, figure1_graph

settings.register_profile("repro-deterministic", derandomize=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-deterministic"))


@pytest.fixture(autouse=True)
def _deterministic_random():
    """Seed the global RNG per test: order/selection never changes outcomes."""
    random.seed(0x5EED)
    yield


@pytest.fixture
def diamond() -> DiGraph:
    """a -> b -> d, a -> c -> d, with labels."""
    return DiGraph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        labels={"a": "src", "b": "HR", "c": "DB", "d": "dst"},
    )


@pytest.fixture
def cycle_graph() -> DiGraph:
    """0 -> 1 -> 2 -> 0 plus an exit 2 -> 3."""
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])


@pytest.fixture
def chain_graph() -> DiGraph:
    """0 -> 1 -> ... -> 9, labels alternate A/B."""
    g = DiGraph.from_edges([(i, i + 1) for i in range(9)])
    for i in range(10):
        g.set_label(i, "A" if i % 2 == 0 else "B")
    return g


@pytest.fixture
def figure1():
    """(graph, fragmentation, cluster) of the paper's running example."""
    graph = figure1_graph()
    fragmentation = figure1_fragmentation()
    return graph, fragmentation, SimulatedCluster(fragmentation)


@pytest.fixture
def random_case():
    """Factory: (graph, cluster) for a seeded random instance."""

    def make(seed: int, num_nodes: int = 30, num_edges: int = 60, k: int = 3,
             num_labels: int = 3):
        graph = erdos_renyi(num_nodes, num_edges, seed=seed, num_labels=num_labels)
        assignment = random_partition(graph, k, seed=seed)
        fragmentation = build_fragmentation(graph, assignment, k)
        return graph, SimulatedCluster(fragmentation)

    return make


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
    config.addinivalue_line(
        "markers",
        "network: needs internet access (deselected by default via addopts)",
    )
