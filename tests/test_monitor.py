"""Tests for the drift-triggered streaming refinement monitor (DESIGN.md §8)."""

import gc
import random

import pytest

from repro.distributed import SimulatedCluster
from repro.errors import FragmentationError
from repro.graph import erdos_renyi
from repro.partition import MutationMonitor, check_fragmentation
from repro.workload.datasets import load_dataset


def _drifting_case(scale=0.003, card=4, seed=0):
    """An amazon-analog cluster on a chunk split, plus a cross-add stream."""
    graph = load_dataset("amazon", scale=scale, seed=seed)
    cluster = SimulatedCluster.from_graph(graph, card, partitioner="chunk", seed=seed)
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())

    def stream(count):
        produced = 0
        while produced < count:
            u, v = rng.choice(nodes), rng.choice(nodes)
            fragment = cluster.fragmentation[cluster.fragmentation.placement[u]]
            if u == v or fragment.local_graph.has_edge(u, v):
                continue
            yield u, v
            produced += 1

    return graph, cluster, stream


class TestDriftTracking:
    def test_baseline_and_drift(self):
        _, cluster, stream = _drifting_case()
        monitor = MutationMonitor(cluster, drift_threshold=100.0)
        assert monitor.baseline_vf == cluster.fragmentation.num_boundary_nodes
        assert monitor.drift() == 0.0
        for u, v in stream(10):
            cluster.apply_edge_mutation(u, v, add=True)
        assert monitor.mutations_seen == 10
        assert monitor.drift() > 0.0
        assert len(monitor.refinements) == 0  # threshold never reached

    def test_trigger_fires_and_resets_baseline(self):
        _, cluster, stream = _drifting_case()
        monitor = MutationMonitor(
            cluster, drift_threshold=0.05, move_budget=32, region_hops=2
        )
        for u, v in stream(60):
            cluster.apply_edge_mutation(u, v, add=True)
            if monitor.refinements:
                break
        assert len(monitor.refinements) == 1
        report = monitor.refinements[0]
        assert report.partitioner == "<assignment>"
        assert monitor.baseline_vf == report.after.num_boundary_nodes
        assert not monitor._touched  # recorded region was consumed
        # drift restarts from the post-refinement baseline
        assert monitor.drift() == 0.0

    def test_auto_refine_off_only_tracks(self):
        _, cluster, stream = _drifting_case()
        monitor = MutationMonitor(cluster, drift_threshold=0.01, auto_refine=False)
        for u, v in stream(30):
            cluster.apply_edge_mutation(u, v, add=True)
        assert monitor.drift() > monitor.drift_threshold
        assert len(monitor.refinements) == 0

    def test_manual_repartition_resets_baseline(self):
        _, cluster, stream = _drifting_case()
        monitor = MutationMonitor(cluster, drift_threshold=100.0)
        for u, v in stream(15):
            cluster.apply_edge_mutation(u, v, add=True)
        assert monitor.drift() > 0.0
        report = cluster.repartition("refined", seed=0)
        assert monitor.baseline_vf == report.after.num_boundary_nodes
        assert monitor.drift() == 0.0

    def test_dropped_monitor_detaches(self):
        _, cluster, stream = _drifting_case()
        monitor = MutationMonitor(cluster, drift_threshold=0.01)
        assert cluster.mutation_monitor is monitor
        del monitor
        gc.collect()
        assert cluster.mutation_monitor is None
        for u, v in stream(5):  # mutations proceed untriggered
            cluster.apply_edge_mutation(u, v, add=True)


class TestBoundedRefinement:
    def _drifted(self, threshold=100.0, **knobs):
        graph, cluster, stream = _drifting_case()
        monitor = MutationMonitor(cluster, drift_threshold=threshold, **knobs)
        for u, v in stream(40):
            cluster.apply_edge_mutation(u, v, add=True)
        return graph, cluster, monitor

    def test_budget_respected(self):
        _, cluster, monitor = self._drifted(move_budget=3, region_hops=3)
        before = dict(cluster.fragmentation.placement)
        monitor.refine()
        after = dict(cluster.fragmentation.placement)
        changed = [node for node in before if before[node] != after[node]]
        assert len(changed) == monitor.last_moves <= 3
        assert monitor.refinements[0].moved_nodes == monitor.last_moves

    def test_moves_confined_to_affected_region(self):
        _, cluster, monitor = self._drifted(move_budget=64, region_hops=2)
        graph_now = cluster.fragmentation.restore_graph()
        region = monitor.affected_region(graph_now)
        before = dict(cluster.fragmentation.placement)
        monitor.refine()
        after = dict(cluster.fragmentation.placement)
        changed = {node for node in before if before[node] != after[node]}
        assert changed <= region

    def test_boundary_never_increases(self):
        _, cluster, monitor = self._drifted(move_budget=64, region_hops=2)
        vf_before = cluster.fragmentation.num_boundary_nodes
        report = monitor.refine()
        assert report.after.num_boundary_nodes <= vf_before
        assert cluster.fragmentation.num_boundary_nodes <= vf_before

    def test_refined_fragmentation_stays_valid(self):
        _, cluster, monitor = self._drifted(move_budget=16, region_hops=2)
        monitor.refine()
        graph_now = cluster.fragmentation.restore_graph()
        check_fragmentation(graph_now, cluster.fragmentation)

    def test_refinement_charges_shipping(self):
        _, cluster, monitor = self._drifted(move_budget=64, region_hops=3)
        report = monitor.refine()
        if report.moved_nodes:
            assert report.shipping.traffic_bytes > 0
            assert report.shipping.network_seconds > 0.0

    def test_region_hops_zero_restricts_to_endpoints(self):
        _, cluster, monitor = self._drifted(region_hops=0)
        graph_now = cluster.fragmentation.restore_graph()
        assert monitor.affected_region(graph_now) == {
            node for node in monitor._touched if graph_now.has_node(node)
        }


class TestValidation:
    def test_rejects_bad_knobs(self):
        g = erdos_renyi(12, 24, seed=1)
        cluster = SimulatedCluster.from_graph(g, 2, "hash")
        with pytest.raises(FragmentationError, match="drift_threshold"):
            MutationMonitor(cluster, drift_threshold=0.0)
        with pytest.raises(FragmentationError, match="move_budget"):
            MutationMonitor(cluster, move_budget=0)
        with pytest.raises(FragmentationError, match="region_hops"):
            MutationMonitor(cluster, region_hops=-1)
