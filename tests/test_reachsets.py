"""Unit tests for the seed-bitmask reach-set sweep (the localEval engine)."""

import random

import pytest

from repro.graph import (
    DiGraph,
    decode_mask,
    erdos_renyi,
    is_reachable,
    reachable_seed_masks,
    reachable_seed_sets,
)


class TestBasics:
    def test_diamond(self, diamond):
        seeds = ["d", "c"]
        sets = reachable_seed_sets(diamond.nodes(), diamond.successors, seeds)
        assert sets["a"] == {"d", "c"}
        assert sets["b"] == {"d"}
        assert sets["c"] == {"d", "c"}  # include_self: c reaches itself
        assert sets["d"] == {"d"}

    def test_exclude_self_on_dag(self, diamond):
        sets = reachable_seed_sets(
            diamond.nodes(), diamond.successors, ["c"], include_self=False
        )
        assert sets["c"] == frozenset()
        assert sets["a"] == {"c"}

    def test_exclude_self_on_cycle(self, cycle_graph):
        sets = reachable_seed_sets(
            cycle_graph.nodes(), cycle_graph.successors, [0], include_self=False
        )
        # 0 lies on a cycle, so a non-empty path 0 -> ... -> 0 exists.
        assert sets[0] == {0}

    def test_self_loop_counts_without_include_self(self):
        g = DiGraph()
        g.add_edge("a", "a", create=True)
        sets = reachable_seed_sets(g.nodes(), g.successors, ["a"], include_self=False)
        assert sets["a"] == {"a"}

    def test_no_seeds(self, diamond):
        masks = reachable_seed_masks(diamond.nodes(), diamond.successors, [])
        assert all(mask == 0 for mask in masks.values())

    def test_duplicate_seeds_share_reachability(self, diamond):
        seeds = ["d", "d"]
        masks = reachable_seed_masks(diamond.nodes(), diamond.successors, seeds)
        assert masks["a"] == 0b11

    def test_decode_mask(self):
        assert decode_mask(0b101, ["x", "y", "z"]) == {"x", "z"}


class TestAgainstBFS:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi(40, rng.randrange(0, 160), seed=seed)
        nodes = list(g.nodes())
        seeds = rng.sample(nodes, k=min(7, len(nodes)))
        sets = reachable_seed_sets(g.nodes(), g.successors, seeds)
        for node in nodes:
            expected = frozenset(s for s in seeds if is_reachable(g, node, s))
            assert sets[node] == expected, (seed, node)

    def test_generic_successors(self):
        # Implicit graph: i -> i+1 mod 5 (a cycle) — everything reaches 0.
        def succ(n):
            return [(n + 1) % 5]

        masks = reachable_seed_masks(range(5), succ, [0])
        assert all(masks[i] == 1 for i in range(5))
