"""Unit tests for disRPQ (Section 5)."""

import pytest

from repro.automata import US, UT, QueryAutomaton
from repro.core import dis_rpq, regular_reachable
from repro.core.bes import TRUE
from repro.core.regular import (
    RegularPartialAnswer,
    assemble_regular,
    local_eval_regular,
)
from repro.distributed import payload_size
from repro.errors import QueryError


@pytest.fixture
def figure1_automaton():
    return QueryAutomaton.build("DB* | HR*", "Ann", "Mark")


def _hr_state(automaton):
    (hr,) = [
        s for s in automaton.states()
        if s not in (US, UT) and automaton.analysis.position_labels[s] == "HR"
    ]
    return hr


class TestLocalEvalRegular:
    def test_figure1_example7_f2_vectors(self, figure1, figure1_automaton):
        """Example 7: Mat.rvec[HR] = X(Fred,HR); Emmy.rvec[HR] = X(Ross,HR);
        Jack matches nothing."""
        _, fragmentation, _ = figure1
        equations = local_eval_regular(fragmentation[1], figure1_automaton)
        hr = _hr_state(figure1_automaton)
        assert equations[("Mat", hr)] == frozenset({("Fred", hr)})
        assert equations[("Emmy", hr)] == frozenset({("Ross", hr)})
        # Jack is MK: no state of Gq matches it, so no vector entries at all.
        assert not any(node == "Jack" for node, _ in equations)

    def test_figure1_f3_truth(self, figure1, figure1_automaton):
        _, fragmentation, _ = figure1
        equations = local_eval_regular(fragmentation[2], figure1_automaton)
        hr = _hr_state(figure1_automaton)
        # Ross (HR) reaches Mark = t directly: true.
        assert equations[("Ross", hr)] == frozenset({TRUE})

    def test_figure1_f1_start_vector(self, figure1, figure1_automaton):
        _, fragmentation, _ = figure1
        equations = local_eval_regular(fragmentation[0], figure1_automaton)
        hr = _hr_state(figure1_automaton)
        # From (Ann, us): Ann -> Walt(HR) -> virtual Mat(HR).
        assert ("Mat", hr) in equations[("Ann", US)]

    def test_empty_when_no_in_nodes(self):
        from repro.graph import DiGraph
        from repro.partition import build_fragmentation

        g = DiGraph.from_edges([("a", "b")], labels={"a": "X", "b": "X"})
        frag = build_fragmentation(g, {"a": 0, "b": 0}, 2)
        automaton = QueryAutomaton.build("X*", "a", "b")
        assert local_eval_regular(frag[1], automaton) == {}


class TestAssembleRegular:
    def test_figure1_assembles_true(self, figure1, figure1_automaton):
        _, fragmentation, _ = figure1
        partials = {
            frag.fid: local_eval_regular(frag, figure1_automaton)
            for frag in fragmentation
        }
        answer, bes = assemble_regular(partials, figure1_automaton)
        assert answer

    def test_wrong_label_chain_is_false(self, figure1):
        _, fragmentation, _ = figure1
        automaton = QueryAutomaton.build("DB*", "Ann", "Mark")
        partials = {
            frag.fid: local_eval_regular(frag, automaton)
            for frag in fragmentation
        }
        answer, _ = assemble_regular(partials, automaton)
        assert not answer


class TestDisRPQ:
    def test_figure1_examples(self, figure1):
        _, _, cluster = figure1
        assert dis_rpq(cluster, ("Ann", "Mark", "DB* | HR*")).answer
        assert dis_rpq(cluster, ("Walt", "Mark", "(CTO DB*) | HR*")).answer
        assert not dis_rpq(cluster, ("Ann", "Mark", "DB*")).answer
        assert not dis_rpq(cluster, ("Ann", "Mark", "DB* HR")).answer

    def test_path_labels_exclude_endpoints(self, figure1):
        _, _, cluster = figure1
        # Ann -> Walt -> Mat -> Fred -> Emmy -> Ross -> Mark: 5 HR between.
        assert dis_rpq(cluster, ("Ann", "Mark", "HR HR HR HR HR")).answer
        assert not dis_rpq(cluster, ("Ann", "Mark", "HR HR HR HR")).answer

    def test_visits_once(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, ("Ann", "Mark", "DB* | HR*"))
        assert result.stats.visits_per_site() == {0: 1, 1: 1, 2: 1}

    def test_trivial_nullable_self_query(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, ("Tom", "Tom", "HR*"))
        assert result.answer and result.details.get("trivial")

    def test_non_nullable_self_query_needs_cycle(self, figure1):
        _, _, cluster = figure1
        # Fred -> Emmy -> relay1 -> relay2 -> Fred is a cycle, labels:
        # Emmy=HR, relay1=MK, relay2=SE.
        assert dis_rpq(cluster, ("Fred", "Fred", "HR MK SE")).answer
        assert not dis_rpq(cluster, ("Fred", "Fred", "HR HR")).answer

    def test_unknown_endpoint_raises(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_rpq(cluster, ("Ann", "Ghost", "HR*"))

    def test_automaton_is_what_ships(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, ("Ann", "Mark", "DB* | HR*"))
        query_msgs = [m for m in result.stats.messages if m.kind.value == "query"]
        assert len(query_msgs) == 3
        expected = payload_size(QueryAutomaton.build("DB* | HR*", "Ann", "Mark"))
        assert all(m.size_bytes == expected for m in query_msgs)

    def test_agrees_with_centralized(self, random_case):
        regexes = ["L0* | L1*", ". *", "L2 L1* L0?", "(L0 | L1) L2*", "()"]
        for seed in range(4):
            graph, cluster = random_case(seed)
            nodes = sorted(graph.nodes())
            for s in nodes[::9]:
                for t in nodes[::8]:
                    for regex in regexes:
                        expected = regular_reachable(graph, s, t, regex)
                        got = dis_rpq(cluster, (s, t, regex))
                        assert got.answer == expected, (seed, s, t, regex)

    def test_details(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, ("Ann", "Mark", "DB* | HR*"), collect_details=True)
        assert result.details["automaton_states"] == 4
        assert "equations" in result.details


class TestRegularPartialPayload:
    def test_scales_with_vectors(self):
        small = RegularPartialAnswer({("a", 0): frozenset({("w", 1)})})
        big = RegularPartialAnswer(
            {
                ("a", 0): frozenset({("w", 1)}),
                ("b", 0): frozenset({("w", 1), ("x", 2)}),
            }
        )
        assert payload_size(small) < payload_size(big)
