"""Unit tests for synthetic graph generators."""

import pytest

from repro.graph import (
    assign_labels,
    erdos_renyi,
    forest_fire,
    preferential_attachment,
    synthetic_graph,
)


class TestErdosRenyi:
    def test_exact_counts(self):
        g = erdos_renyi(50, 120, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 120

    def test_deterministic(self):
        assert erdos_renyi(30, 60, seed=7) == erdos_renyi(30, 60, seed=7)

    def test_different_seeds_differ(self):
        assert erdos_renyi(30, 60, seed=1) != erdos_renyi(30, 60, seed=2)

    def test_rejects_impossible_edge_count(self):
        with pytest.raises(ValueError):
            erdos_renyi(3, 100)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0)

    def test_labels(self):
        g = erdos_renyi(20, 30, seed=0, num_labels=3)
        assert g.label_alphabet() <= {"L0", "L1", "L2"}
        assert all(g.label(n) is not None for n in g.nodes())


class TestPreferentialAttachment:
    def test_size_and_connectivity_shape(self):
        g = preferential_attachment(200, out_degree=3, seed=2)
        assert g.num_nodes == 200
        # new nodes link backwards: node 0 collects high in-degree
        indegs = sorted((g.in_degree(n) for n in g.nodes()), reverse=True)
        assert indegs[0] >= 5 * (indegs[len(indegs) // 2] + 1) or indegs[0] > 20

    def test_deterministic(self):
        a = preferential_attachment(80, seed=5)
        b = preferential_attachment(80, seed=5)
        assert a == b


class TestForestFire:
    def test_grows_connected_ish(self):
        g = forest_fire(150, seed=3)
        assert g.num_nodes == 150
        assert g.num_edges >= 149 // 2  # every arrival burns at least its ambassador

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            forest_fire(10, forward_prob=1.5)


class TestSyntheticGraph:
    @pytest.mark.parametrize("model", ["uniform", "scale-free", "densification"])
    def test_models_hit_requested_size(self, model):
        g = synthetic_graph(300, 900, num_labels=4, seed=1, model=model)
        assert g.num_nodes == 300
        assert abs(g.num_edges - 900) <= 900 * 0.1
        assert len(g.label_alphabet()) <= 4

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            synthetic_graph(10, 20, model="nope")


class TestAssignLabels:
    def test_in_place_and_total(self, diamond):
        assign_labels(diamond, ["X", "Y"], seed=1)
        assert all(diamond.label(n) in {"X", "Y"} for n in diamond.nodes())
