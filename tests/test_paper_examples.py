"""Golden tests: every worked example of the paper, end to end.

These tests pin the reproduction to the paper's own walkthrough on the
Figure 1 recommendation network: Example 2 (fragment anatomy), Example 3
(disReach equations), Example 4 (dependency-graph answer), Example 5
(disDist distances), Example 6 (query automata), Example 7 (disRPQ
vectors), Example 8 (assembling) and Example 1's headline claims.
"""

import pytest

from repro.automata import QueryAutomaton, US, UT
from repro.core import (
    BoundedReachQuery,
    ReachQuery,
    RegularReachQuery,
    TRUE,
    dis_dist,
    dis_rpq,
    local_eval_reach,
)
from repro.core.reachability import assemble_reach
from repro.distributed import MessageKind
from repro.partition import check_fragmentation
from repro.workload.paper_example import (
    DISTANCE_BOUND,
    PEOPLE,
    QUERY_REGEX,
    QUERY_REGEX_PRIME,
    figure1_fragmentation,
    figure1_graph,
)


class TestExample2Fragmentation:
    """Example 2: F1.O = {Pat, Mat, Emmy}, F1.I = {Fred}, and the cross
    edges (Fred, Emmy), (Bill, Pat), (Walt, Mat)."""

    def test_is_valid_fragmentation(self):
        check_fragmentation(figure1_graph(), figure1_fragmentation())

    def test_f1_anatomy(self):
        f1 = figure1_fragmentation()[0]
        assert f1.virtual_nodes == {"Pat", "Mat", "Emmy"}
        assert f1.in_nodes == {"Fred"}
        assert set(f1.cross_edges) == {
            ("Fred", "Emmy"), ("Bill", "Pat"), ("Walt", "Mat")
        }

    def test_f2_f3_in_out_sets(self):
        frag = figure1_fragmentation()
        assert frag[1].in_nodes == {"Mat", "Jack", "Emmy"}
        assert frag[1].virtual_nodes == {"Fred", "Ross"}
        assert frag[2].in_nodes == {"Ross", "Pat"}
        assert frag[2].virtual_nodes == {"Jack"}

    def test_fragment_graph_has_no_internal_edges(self):
        frag = figure1_fragmentation()
        gf = frag.fragment_graph()
        assert not gf.has_edge("Ann", "Walt")  # internal to F1
        assert gf.has_edge("Walt", "Mat")  # cross

    def test_labels(self):
        g = figure1_graph()
        assert g.label("Ann") == "CTO"
        assert g.label("Mark") == "FA"
        assert PEOPLE["Ross"] == "HR"


class TestExample1Claims:
    """Example 1: the HR chain exists; only 2 message rounds beyond the
    query; partial evaluation runs without inter-site waiting."""

    def test_hr_chain_exists(self):
        g = figure1_graph()
        path = ["Ann", "Walt", "Mat", "Fred", "Emmy", "Ross", "Mark"]
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v), (u, v)
        assert all(g.label(p) == "HR" for p in path[1:-1])

    def test_answer_true(self, figure1):
        _, _, cluster = figure1
        assert dis_rpq(cluster, ("Ann", "Mark", QUERY_REGEX)).answer

    def test_messages_beyond_query_all_go_to_coordinator(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, ("Ann", "Mark", QUERY_REGEX))
        non_query = [m for m in result.stats.messages if m.kind != MessageKind.QUERY]
        assert all(m.dst == -1 for m in non_query)


class TestExample3Equations:
    def test_all_three_rvsets(self, figure1):
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        expected = {
            0: {
                "Ann": frozenset({"Pat", "Mat"}),
                "Fred": frozenset({"Emmy"}),
            },
            1: {
                "Mat": frozenset({"Fred"}),
                "Jack": frozenset({"Fred"}),
                "Emmy": frozenset({"Fred", "Ross"}),
            },
            2: {
                "Ross": frozenset({TRUE}),
                "Pat": frozenset({"Jack"}),
            },
        }
        for frag in fragmentation:
            assert local_eval_reach(frag, query) == expected[frag.fid], frag.fid


class TestExample4Assembling:
    def test_dependency_graph_answer(self, figure1):
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        partials = {
            frag.fid: local_eval_reach(frag, query) for frag in fragmentation
        }
        answer, bes = assemble_reach(partials, query)
        assert answer
        gd = bes.dependency_graph()
        # Fig. 5(a): the path XAnn -> XMat -> XFred -> XEmmy -> XRoss -> true
        for u, v in [("Ann", "Mat"), ("Mat", "Fred"), ("Fred", "Emmy"),
                     ("Emmy", "Ross"), ("Ross", TRUE)]:
            assert gd.has_edge(u, v), (u, v)

    def test_xfred_recursively_defined(self, figure1):
        """The paper: "xFred is defined indirectly in terms of itself"."""
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        partials = {
            frag.fid: local_eval_reach(frag, query) for frag in fragmentation
        }
        _, bes = assemble_reach(partials, query)
        gd = bes.dependency_graph()
        from repro.graph import is_reachable

        # Fred -> Emmy -> Fred in the dependency graph.
        assert is_reachable(gd, "Fred", "Fred") or any(
            is_reachable(gd, nxt, "Fred") for nxt in gd.successors("Fred")
        )


class TestExample5BoundedDistance:
    def test_distance_is_exactly_six(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, BoundedReachQuery("Ann", "Mark", DISTANCE_BOUND))
        assert result.answer
        assert result.distance == pytest.approx(6.0)

    def test_f2_equation_table(self, figure1):
        from repro.core.bounded import local_eval_bounded

        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 6)
        terms = local_eval_bounded(fragmentation[1], query)
        assert dict(terms["Mat"]) == {"Fred": 1.0}
        assert dict(terms["Jack"]) == {"Fred": 3.0}
        assert dict(terms["Emmy"]) == {"Fred": 3.0, "Ross": 1.0}


class TestExample6QueryAutomata:
    def test_gq_of_r(self):
        qa = QueryAutomaton.build(QUERY_REGEX, "Ann", "Mark")
        assert qa.num_states == 4  # Ann, DB, HR, Mark

    def test_gq_of_r_prime(self):
        qa = QueryAutomaton.build(QUERY_REGEX_PRIME, "Walt", "Mark")
        assert qa.num_states == 5  # Walt, CTO, DB, HR, Mark


class TestExamples7And8RegularReachability:
    def test_example7_vectors(self, figure1):
        from repro.core.regular import local_eval_regular

        _, fragmentation, _ = figure1
        qa = QueryAutomaton.build(QUERY_REGEX, "Ann", "Mark")
        (hr,) = [
            s for s in qa.states()
            if s not in (US, UT) and qa.analysis.position_labels[s] == "HR"
        ]
        equations = local_eval_regular(fragmentation[1], qa)
        assert equations[("Mat", hr)] == frozenset({("Fred", hr)})
        assert equations[("Emmy", hr)] == frozenset({("Ross", hr)})

    def test_example8_answer(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(cluster, RegularReachQuery("Ann", "Mark", QUERY_REGEX))
        assert result.answer

    def test_example6_second_query_true(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq(
            cluster, RegularReachQuery("Walt", "Mark", QUERY_REGEX_PRIME)
        )
        assert result.answer
