"""Executor backends: identical answers and modeled costs on every backend.

The tentpole guarantee of the executor layer (DESIGN.md §5): backends change
*how* site-local work executes (inline / thread pool / process pool), never
*what* it computes — answers, visits, traffic, message logs and supersteps
must be bit-identical to the sequential reference.  Wall-clock quantities
(``response_seconds``, ``phase_wall_seconds``) are measured and therefore
nondeterministic; they are checked for sanity, not equality.
"""

from __future__ import annotations

import pytest

from repro.core.engine import evaluate
from repro.core.queries import BoundedReachQuery, ReachQuery, RegularReachQuery
from repro.distributed import SimulatedCluster
from repro.distributed.executors import (
    EXECUTORS,
    ProcessExecutor,
    SequentialExecutor,
    SiteTask,
    SocketExecutor,
    ThreadExecutor,
    default_executor_name,
    get_executor,
    resolve_executor,
    set_default_executor,
)
from repro.errors import DistributedError
from repro.workload.paper_example import figure1_fragmentation

BACKENDS = sorted(EXECUTORS)

#: The paper's running example, one query per query class (all three have
#: known answers on Figure 1), plus every registered algorithm for each.
QUERY_CASES = [
    ("reach", ReachQuery("Ann", "Mark"), ["disReach", "disReachn", "disReachm"]),
    ("bounded", BoundedReachQuery("Ann", "Mark", 6), ["disDist", "disDistn", "disDistm"]),
    (
        "regular",
        RegularReachQuery("Ann", "Mark", "DB* | HR*"),
        ["disRPQ", "disRPQn", "disRPQd"],
    ),
]


def _modeled_signature(result):
    """The deterministic, backend-independent part of a run's stats."""
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
        stats.supersteps,
    )


def _reference_signatures():
    cluster = SimulatedCluster(figure1_fragmentation(), executor="sequential")
    out = {}
    for _name, query, algorithms in QUERY_CASES:
        for algorithm in algorithms:
            out[algorithm] = _modeled_signature(evaluate(cluster, query, algorithm))
    return out


REFERENCE = _reference_signatures()


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "query,algorithms",
        [(query, algorithms) for _name, query, algorithms in QUERY_CASES],
        ids=[name for name, _query, _algorithms in QUERY_CASES],
    )
    def test_paper_example_identical_across_backends(self, backend, query, algorithms):
        cluster = SimulatedCluster(figure1_fragmentation(), executor=backend)
        for algorithm in algorithms:
            result = evaluate(cluster, query, algorithm)
            assert result.stats.executor == backend
            assert _modeled_signature(result) == REFERENCE[algorithm], (
                f"{algorithm} diverged on the {backend} backend"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_instance_answers_match(self, backend, random_case):
        graph, cluster = random_case(seed=7)
        nodes = sorted(graph.nodes(), key=repr)
        source, target = nodes[0], nodes[-1]
        sequential = evaluate(cluster, ReachQuery(source, target))
        with cluster.using_executor(backend):
            result = evaluate(cluster, ReachQuery(source, target))
        assert result.answer == sequential.answer
        assert result.stats.traffic_bytes == sequential.stats.traffic_bytes

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pregel_vertex_programs_identical_across_backends(self, backend):
        """BFS/SSSP on the sharded Pregel substrate: values + modeled stats
        match the sequential reference on every backend (DESIGN.md §5)."""
        from repro.baselines import pregel_bfs_levels, pregel_sssp

        def signature(cluster):
            out = []
            for driver in (pregel_bfs_levels, pregel_sssp):
                values, stats = driver(cluster, "Ann")
                out.append(
                    (
                        values,
                        dict(stats.visits),
                        stats.traffic_bytes,
                        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
                        stats.supersteps,
                    )
                )
            return out

        reference = signature(
            SimulatedCluster(figure1_fragmentation(), executor="sequential")
        )
        cluster = SimulatedCluster(figure1_fragmentation(), executor=backend)
        assert signature(cluster) == reference

    def test_evaluate_executor_override_restores_backend(self, figure1):
        _graph, _fragmentation, cluster = figure1
        assert cluster.executor.name == "sequential"
        result = evaluate(
            cluster, ReachQuery("Ann", "Mark"), "disReach", executor="thread"
        )
        assert result.stats.executor == "thread"
        assert cluster.executor.name == "sequential"


class TestSpeedupAccounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_phase_wall_and_compute_recorded(self, backend):
        cluster = SimulatedCluster(figure1_fragmentation(), executor=backend)
        result = evaluate(cluster, ReachQuery("Ann", "Mark"), "disReach")
        stats = result.stats
        assert stats.phase_wall_seconds > 0
        assert stats.site_compute_seconds > 0
        assert stats.parallel_speedup is not None and stats.parallel_speedup > 0
        assert backend in stats.summary()

    def test_fresh_stats_have_no_speedup(self):
        from repro.distributed import ExecutionStats

        stats = ExecutionStats(algorithm="x", num_sites=2)
        assert stats.parallel_speedup is None
        stats.add_parallel_phase({0: 0.2, 1: 0.3}, wall_seconds=0.25)
        assert stats.response_seconds == pytest.approx(0.3)
        assert stats.site_compute_seconds == pytest.approx(0.5)
        assert stats.parallel_speedup == pytest.approx(2.0)


class TestPhaseMap:
    def test_results_return_in_task_order(self, figure1):
        _graph, _fragmentation, cluster = figure1
        run = cluster.start_run("x")
        with run.parallel_phase() as phase:
            values = phase.map(_double, [(2, (2,)), (0, (0,)), (1, (1,))])
        assert values == [4, 0, 2]
        assert set(phase.site_seconds) == {0, 1, 2}
        run.finish()

    def test_task_exception_propagates(self, figure1):
        _graph, _fragmentation, cluster = figure1
        run = cluster.start_run("x")
        with pytest.raises(ValueError, match="boom"):
            with run.parallel_phase() as phase:
                phase.map(_explode, [(0, ()), (1, ())])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_runs_on_every_backend(self, backend, figure1):
        _graph, _fragmentation, cluster = figure1
        with cluster.using_executor(backend):
            run = cluster.start_run("x")
            with run.parallel_phase() as phase:
                values = phase.map(_double, [(sid, (sid,)) for sid in range(3)])
            stats = run.finish()
        assert values == [0, 2, 4]
        assert stats.supersteps == 1


def _double(x):
    return 2 * x


def _explode():
    raise ValueError("boom")


class TestRegistry:
    def test_known_backends(self):
        assert set(EXECUTORS) == {"sequential", "thread", "process", "socket"}
        assert isinstance(get_executor("sequential"), SequentialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)
        assert isinstance(get_executor("socket"), SocketExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(DistributedError, match="unknown executor"):
            get_executor("mapreduce")
        with pytest.raises(DistributedError):
            set_default_executor("mapreduce")
        with pytest.raises(DistributedError):
            resolve_executor(42)

    def test_resolve_accepts_instance_and_none(self):
        backend = SequentialExecutor()
        assert resolve_executor(backend) is backend
        assert resolve_executor(None).name == default_executor_name()

    def test_default_executor_roundtrip(self):
        original = default_executor_name()
        try:
            set_default_executor("thread")
            assert default_executor_name() == "thread"
            cluster = SimulatedCluster(figure1_fragmentation())
            assert cluster.executor.name == "thread"
        finally:
            set_default_executor(original)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(DistributedError, match="max_workers"):
            ThreadExecutor(max_workers=0)

    def test_sequential_runs_tasks_in_order(self):
        backend = SequentialExecutor()
        results = backend.run_tasks(
            [SiteTask(i, _double, (i,)) for i in range(4)]
        )
        assert [r.site_id for r in results] == [0, 1, 2, 3]
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.seconds >= 0 for r in results)
