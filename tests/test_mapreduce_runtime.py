"""Unit tests for the simulated MapReduce runtime."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce import MapReduceRuntime


def word_count_map(key, value):
    for word in value.split():
        yield (word, 1)


def word_count_reduce(key, values):
    yield (key, sum(values))


class TestWordCount:
    def test_basic_job(self):
        runtime = MapReduceRuntime()
        inputs = [(0, "a b a"), (1, "b c")]
        outputs, stats = runtime.run(inputs, word_count_map, word_count_reduce)
        assert dict(outputs) == {"a": 2, "b": 2, "c": 1}
        assert stats.num_mappers == 2
        assert stats.num_reducers == 1

    def test_multiple_reducers_partition_keys(self):
        runtime = MapReduceRuntime()
        inputs = [(0, "a b c d")]
        outputs, stats = runtime.run(
            inputs, word_count_map, word_count_reduce, num_reducers=2,
            partitioner=lambda key, n: 0 if key < "c" else 1,
        )
        assert dict(outputs) == {"a": 1, "b": 1, "c": 1, "d": 1}
        assert stats.reducer_input_bytes[0] > 0
        assert stats.reducer_input_bytes[1] > 0

    def test_rejects_empty_inputs(self):
        with pytest.raises(MapReduceError):
            MapReduceRuntime().run([], word_count_map, word_count_reduce)

    def test_rejects_zero_reducers(self):
        with pytest.raises(MapReduceError):
            MapReduceRuntime().run([(0, "x")], word_count_map, word_count_reduce, 0)

    def test_rejects_bad_partitioner(self):
        with pytest.raises(MapReduceError):
            MapReduceRuntime().run(
                [(0, "x")], word_count_map, word_count_reduce,
                num_reducers=2, partitioner=lambda key, n: 99,
            )

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(MapReduceError):
            MapReduceRuntime(bandwidth=0)


class TestCostModel:
    def test_ecc_is_mapper_plus_reducer_input(self):
        runtime = MapReduceRuntime()
        inputs = [(0, "aa bb"), (1, "c")]
        _, stats = runtime.run(inputs, word_count_map, word_count_reduce)
        expected = max(stats.mapper_input_bytes) + stats.reducer_input_bytes[0]
        assert stats.ecc_bytes == expected

    def test_mapper_input_bytes_reflect_payload(self):
        runtime = MapReduceRuntime()
        _, stats = runtime.run([(0, "abc")], word_count_map, word_count_reduce)
        assert stats.mapper_input_bytes == [8 + 3]

    def test_response_time_positive_and_bounded_by_wall(self):
        runtime = MapReduceRuntime()
        _, stats = runtime.run(
            [(0, "a b"), (1, "c d")], word_count_map, word_count_reduce
        )
        assert stats.response_seconds > 0
        # two latency rounds + transfers + max compute
        assert stats.response_seconds >= 2 * runtime.latency

    def test_summary_readable(self):
        runtime = MapReduceRuntime()
        _, stats = runtime.run([(0, "a")], word_count_map, word_count_reduce)
        assert "ECC" in stats.summary()

    def test_shuffle_totals(self):
        runtime = MapReduceRuntime()
        _, stats = runtime.run(
            [(0, "a b"), (1, "a")], word_count_map, word_count_reduce
        )
        assert stats.total_shuffle_bytes == sum(stats.mapper_output_bytes)
