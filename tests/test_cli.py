"""Tests for the ``python -m repro.bench`` CLI."""


from repro.bench.__main__ import main


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig11l" in out

    def test_unknown_experiment(self, capsys):
        assert main(["not-an-experiment"]) == 2

    def test_runs_one_experiment(self, capsys):
        code = main(
            ["ablation-partitioner", "--scale", "0.0005", "--queries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Partitioner ablation" in out
        assert "random" in out

    def test_kernel_flag_accepted(self, capsys):
        from repro.core.kernels import default_kernel, set_default_kernel

        try:
            code = main(
                ["ablation-partitioner", "--scale", "0.0005", "--queries", "1",
                 "--kernel", "numpy"]
            )
            assert code == 0
            assert default_kernel() == "numpy"
        finally:
            set_default_kernel(None)  # --kernel sets the process-wide default
        assert "Partitioner ablation" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        code = main(
            [
                "ablation-partitioner",
                "--scale", "0.0005",
                "--queries", "1",
                "--csv", str(target),
            ]
        )
        assert code == 0
        text = target.read_text()
        assert "partitioner" in text

    def test_workload_experiment_listed(self, capsys):
        assert main([]) == 0
        assert "workload" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        code = main(
            [
                "workload",
                "--scale", "0.005",
                "--queries", "8",
                "--json", str(target),
            ]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert "workload" in payload
        rows = payload["workload"]["rows"]
        modes = {row["mode"] for row in rows}
        assert modes == {"one-by-one", "batch"}
        batch_row = next(row for row in rows if row["mode"] == "batch")
        for column in ("traffic_KB", "network_ms", "visits", "hit_rate", "speedup"):
            assert column in batch_row

    def test_partition_experiment_listed(self, capsys):
        assert main([]) == 0
        assert "partition" in capsys.readouterr().out

    def test_zero_queries_rejected(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["partition", "--queries", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_multiple_experiments_into_one_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        code = main(
            [
                "workload", "partition",
                "--scale", "0.005",
                "--queries", "2",
                "--json", str(target),
            ]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"workload", "partition"}
        partition_row = payload["partition"]["rows"][0]
        for column in ("dataset", "partitioner", "algorithm", "Vf",
                       "in_out", "cut", "bound", "traffic_KB",
                       "network_ms", "visits", "answers"):
            assert column in partition_row
        partitioners = {row["partitioner"] for row in payload["partition"]["rows"]}
        assert {"hash", "refined", "multilevel"} <= partitioners

    def test_sessions_flag_reaches_mutation_sweep(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        code = main(
            [
                "mutation",
                "--scale", "0.001",
                "--queries", "6",
                "--sessions", "4",
                "--json", str(target),
            ]
        )
        assert code == 0
        rows = json.loads(target.read_text())["mutation"]["rows"]
        sweep = [row for row in rows if str(row["scenario"]).startswith("sessions-")]
        assert {row["sessions"] for row in sweep} == {1, 2, 4}
        for row in sweep:
            assert row["remap_visits_saved"] >= 0
            assert row["remap_rounds"] >= 0

    def test_sessions_flag_ignored_by_other_experiments(self, capsys):
        # ablation-partitioner takes no `sessions` parameter; the flag must
        # not crash it (it is filtered by signature inspection).
        code = main(
            [
                "ablation-partitioner",
                "--scale", "0.0005",
                "--queries", "1",
                "--sessions", "4",
            ]
        )
        assert code == 0

    def test_baselines_experiment_runs(self, capsys):
        code = main(["baselines", "--scale", "0.0005", "--queries", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "disReachm" in out and "process" in out
