"""Tests for the ``python -m repro.bench`` CLI."""


from repro.bench.__main__ import main


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig11l" in out

    def test_unknown_experiment(self, capsys):
        assert main(["not-an-experiment"]) == 2

    def test_runs_one_experiment(self, capsys):
        code = main(
            ["ablation-partitioner", "--scale", "0.0005", "--queries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Partitioner ablation" in out
        assert "random" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        code = main(
            [
                "ablation-partitioner",
                "--scale", "0.0005",
                "--queries", "1",
                "--csv", str(target),
            ]
        )
        assert code == 0
        text = target.read_text()
        assert "partitioner" in text
