"""Unit tests for disRPQd (the Suciu-variant baseline)."""

import pytest

from repro.automata import QueryAutomaton
from repro.baselines import dis_rpq_d, local_accessibility
from repro.baselines.suciu import AccessibilityRelation
from repro.core import dis_rpq, regular_reachable
from repro.distributed import MessageKind, payload_size
from repro.errors import QueryError


class TestLocalAccessibility:
    def test_figure1_f2(self, figure1):
        _, fragmentation, _ = figure1
        automaton = QueryAutomaton.build("DB* | HR*", "Ann", "Mark")
        relation = local_accessibility(fragmentation[1], automaton)
        # rows: Mat/Emmy at HR (Jack matches nothing)
        row_nodes = {node for node, _ in relation.in_pairs}
        assert row_nodes == {"Mat", "Emmy"}
        # every row must find its virtual successor pair
        assert all(bits != 0 for bits in relation.bits)

    def test_true_bits_set_when_target_local(self, figure1):
        _, fragmentation, _ = figure1
        automaton = QueryAutomaton.build("DB* | HR*", "Ann", "Mark")
        relation = local_accessibility(fragmentation[2], automaton)
        hr_rows = [
            i for i, (node, _) in enumerate(relation.in_pairs) if node == "Ross"
        ]
        assert any(relation.true_bits >> i & 1 for i in hr_rows)

    def test_payload_is_dense(self):
        relation = AccessibilityRelation(
            in_pairs=(("a", 0), ("b", 0)),
            out_pairs=(("w", 1),) * 1,
            bits=(1, 0),
            true_bits=0,
        )
        # dense matrix bytes charged even for the zero row
        assert relation.payload_size() >= 2 + payload_size(relation.in_pairs) + payload_size(relation.out_pairs) + 1


class TestDisRPQd:
    def test_figure1_answers(self, figure1):
        _, _, cluster = figure1
        assert dis_rpq_d(cluster, ("Ann", "Mark", "DB* | HR*")).answer
        assert not dis_rpq_d(cluster, ("Ann", "Mark", "DB*")).answer

    def test_two_visits_per_site(self, figure1):
        """The defining cost of [30]: every site is visited twice."""
        _, _, cluster = figure1
        result = dis_rpq_d(cluster, ("Ann", "Mark", "DB* | HR*"))
        assert result.stats.visits_per_site() == {0: 2, 1: 2, 2: 2}

    def test_request_round_present(self, figure1):
        _, _, cluster = figure1
        result = dis_rpq_d(cluster, ("Ann", "Mark", "DB* | HR*"))
        kinds = [m.kind for m in result.stats.messages]
        assert kinds.count(MessageKind.REQUEST) == 3

    def test_ships_more_than_disrpq(self, figure1):
        _, _, cluster = figure1
        dense = dis_rpq_d(cluster, ("Ann", "Mark", "DB* | HR*"))
        sparse = dis_rpq(cluster, ("Ann", "Mark", "DB* | HR*"))
        assert dense.stats.traffic_bytes >= sparse.stats.traffic_bytes

    def test_trivial_self_query(self, figure1):
        _, _, cluster = figure1
        assert dis_rpq_d(cluster, ("Tom", "Tom", "HR*")).answer

    def test_unknown_endpoint(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_rpq_d(cluster, ("Ann", "Ghost", "HR*"))

    def test_agrees_with_disrpq_and_centralized(self, random_case):
        regexes = ["L0* | L1*", ". *", "L2 L1* L0?"]
        for seed in range(3):
            graph, cluster = random_case(seed)
            nodes = sorted(graph.nodes())
            for s in nodes[::8]:
                for t in nodes[::9]:
                    for regex in regexes:
                        expected = regular_reachable(graph, s, t, regex)
                        assert dis_rpq_d(cluster, (s, t, regex)).answer == expected
