"""The CI benchmark-regression gate script (``benchmarks/check_regression.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(traffic=10.0, network=1.0, visits=4, hit_rate=0.8, speedup=5.0):
    return {
        "workload": {
            "columns": [],
            "rows": [
                {
                    "mode": "one-by-one",
                    "traffic_KB": 100.0,
                    "network_ms": 50.0,
                    "visits": 400,
                },
                {
                    "mode": "batch",
                    "traffic_KB": traffic,
                    "network_ms": network,
                    "visits": visits,
                    "hit_rate": hit_rate,
                    "speedup": speedup,
                },
            ],
        }
    }


def _partition_payload(refined_vf=100, refined_traffic=5.0, hash_vf=500,
                       hash_traffic=50.0, datasets=("amazon", "youtube")):
    rows = []
    for dataset in datasets:
        for partitioner, vf, traffic in [
            ("hash", hash_vf, hash_traffic),
            ("refined", refined_vf, refined_traffic),
            ("multilevel", refined_vf + 20, refined_traffic + 1.0),
        ]:
            rows.append(
                {
                    "dataset": dataset,
                    "partitioner": partitioner,
                    "algorithm": "disReach",
                    "Vf": vf,
                    "traffic_KB": traffic,
                }
            )
    return {"partition": {"columns": [], "rows": rows}}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestGate:
    def test_identical_runs_pass(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload())
        assert gate.main([cur, base]) == 0
        assert "no regression" not in capsys.readouterr().err

    def test_within_tolerance_passes(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=12.0))
        assert gate.main([cur, base]) == 0

    def test_cost_regression_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=13.0))
        assert gate.main([cur, base]) == 1
        assert "batch/traffic_KB" in capsys.readouterr().err

    def test_floor_violations_fail(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(hit_rate=0.3, speedup=1.2))
        assert gate.main([cur, base]) == 1
        err = capsys.readouterr().err
        assert "hit_rate" in err and "speedup" in err

    def test_improvement_suggests_baseline_refresh(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=2.0))
        assert gate.main([cur, base]) == 0
        assert "refreshing" in capsys.readouterr().out

    def test_step_summary_written(self, gate, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base = _write(tmp_path, "base.json", _payload())
        assert gate.main([base, base]) == 0
        assert "Benchmark regression gate" in summary.read_text()

    def test_missing_experiment_rejected(self, gate, tmp_path):
        bad = _write(tmp_path, "bad.json", {"table2": {"rows": []}})
        good = _write(tmp_path, "good.json", _payload())
        with pytest.raises(SystemExit):
            gate.main([bad, good])

    def test_committed_baseline_is_wellformed(self, gate):
        baseline = SCRIPT.parent / "baseline.json"
        rows = gate.load_rows(baseline)
        assert {"one-by-one", "batch"} <= set(rows)
        assert gate.main([str(baseline), str(baseline)]) == 0

    def test_committed_baseline_has_partition_experiment(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.partition_rows(payload)
        assert rows, "baseline.json must carry the pinned partition sweep"
        partitioners = {p for _d, p, _a in rows}
        assert {"hash", "refined", "multilevel"} <= partitioners


class TestPartitionGate:
    """The partition-quality checks: exact Vf ceilings + refined-beats-hash."""

    def _both(self, tmp_path, name, workload, partition):
        payload = dict(workload)
        payload.update(partition)
        return _write(tmp_path, name, payload)

    def test_identical_partition_runs_pass(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = self._both(tmp_path, "cur.json", _payload(), _partition_payload())
        assert gate.main([cur, base]) == 0

    def test_current_merged_from_two_files(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        wl = _write(tmp_path, "wl.json", _payload())
        pt = _write(tmp_path, "pt.json", _partition_payload())
        assert gate.main([wl, pt, base]) == 0

    def test_vf_ceiling_is_exact(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = self._both(
            tmp_path, "cur.json", _payload(), _partition_payload(refined_vf=101)
        )
        assert gate.main([cur, base]) == 1
        assert "ceiling" in capsys.readouterr().err

    def test_vf_improvement_passes_and_suggests_refresh(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = self._both(
            tmp_path, "cur.json", _payload(), _partition_payload(refined_vf=50)
        )
        assert gate.main([cur, base]) == 0
        assert "refreshing" in capsys.readouterr().out

    def test_refined_must_beat_hash_on_enough_datasets(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        # regressing traffic above hash on every dataset loses every win
        cur = self._both(
            tmp_path,
            "cur.json",
            _payload(),
            _partition_payload(refined_vf=100, refined_traffic=60.0),
        )
        assert gate.main([cur, base]) == 1
        assert "beats hash" in capsys.readouterr().err

    def test_missing_partition_row_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = self._both(
            tmp_path,
            "cur.json",
            _payload(),
            _partition_payload(datasets=("amazon",)),
        )
        assert gate.main([cur, base]) == 1
        assert "missing" in capsys.readouterr().err

    def test_partition_experiment_required_when_baseline_has_it(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = _write(tmp_path, "cur.json", _payload())
        with pytest.raises(SystemExit):
            gate.main([cur, base])

    def test_workload_only_baseline_skips_partition_checks(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _payload())
        cur = self._both(tmp_path, "cur.json", _payload(), _partition_payload())
        assert gate.main([cur, base]) == 0

    def test_duplicate_experiment_across_current_files_rejected(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur1 = _write(tmp_path, "cur1.json", _payload())
        cur2 = self._both(tmp_path, "cur2.json", _payload(), _partition_payload())
        with pytest.raises(SystemExit, match="more than one current file"):
            gate.main([cur1, cur2, base])

    def test_malformed_partition_row_names_the_row(self, gate, tmp_path, capsys):
        partition = _partition_payload()
        for row in partition["partition"]["rows"]:
            if row["partitioner"] == "refined":
                del row["Vf"]
        base = self._both(tmp_path, "base.json", _payload(), _partition_payload())
        cur = self._both(tmp_path, "cur.json", _payload(), partition)
        with pytest.raises(SystemExit, match="refined"):
            gate.main([cur, base])


def _mutation_payload(refinements=2, moves=20, budget=32, vf_ratio=1.05,
                      vf_tol=1.3, traffic=400.0, network=10.0, visits=50):
    rows = []
    for scenario in ("static", "drift-refine"):
        row = {
            "scenario": scenario,
            "refinements": refinements if scenario == "drift-refine" else 0,
            "moves": moves if scenario == "drift-refine" else 0,
            "budget": budget,
            "vf_ratio": vf_ratio if scenario == "drift-refine" else 1.2,
            "vf_tol": vf_tol,
            "traffic_KB": traffic,
            "network_ms": network,
            "visits": visits,
        }
        rows.append(row)
    return {"mutation": {"columns": [], "rows": rows}}


class TestMutationGate:
    """The dynamic-graph checks: refinement envelope + mutation costs."""

    def _both(self, tmp_path, name, extra):
        payload = _payload()
        payload.update(extra)
        return _write(tmp_path, name, payload)

    def test_identical_mutation_runs_pass(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = self._both(tmp_path, "cur.json", _mutation_payload())
        assert gate.main([cur, base]) == 0

    def test_no_refinement_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = self._both(tmp_path, "cur.json", _mutation_payload(refinements=0))
        assert gate.main([cur, base]) == 1
        assert "refinements" in capsys.readouterr().err

    def test_budget_overrun_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = self._both(
            tmp_path, "cur.json", _mutation_payload(moves=100, budget=32)
        )
        assert gate.main([cur, base]) == 1
        assert "moves" in capsys.readouterr().err

    def test_vf_tolerance_violation_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = self._both(tmp_path, "cur.json", _mutation_payload(vf_ratio=1.4))
        assert gate.main([cur, base]) == 1
        assert "vf_ratio" in capsys.readouterr().err

    def test_cost_regression_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = self._both(tmp_path, "cur.json", _mutation_payload(traffic=600.0))
        assert gate.main([cur, base]) == 1
        assert "mutation/static/traffic_KB" in capsys.readouterr().err

    def test_mutation_experiment_required_when_baseline_has_it(
        self, gate, tmp_path
    ):
        base = self._both(tmp_path, "base.json", _mutation_payload())
        cur = _write(tmp_path, "cur.json", _payload())
        with pytest.raises(SystemExit):
            gate.main([cur, base])

    def test_workload_only_baseline_skips_mutation_checks(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _payload())
        cur = self._both(tmp_path, "cur.json", _mutation_payload())
        assert gate.main([cur, base]) == 0

    def test_committed_baseline_has_mutation_experiment(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.mutation_rows(payload)
        assert rows, "baseline.json must carry the pinned mutation run"
        assert {"static", "drift-refine"} <= set(rows)
        drift = rows["drift-refine"]
        assert drift["refinements"] >= 1
        assert drift["moves"] <= drift["refinements"] * drift["budget"]
        assert drift["vf_ratio"] <= drift["vf_tol"]


def _session_rows(sessions=(1, 4, 8), saved_at_4=48, batched=16, refinements=2):
    rows = []
    for s in sessions:
        saved = 0 if s == 1 else saved_at_4 * (s // 4 or 1)
        rows.append(
            {
                "scenario": f"sessions-{s}",
                "sessions": s,
                "refinements": refinements,
                "remap_visits": batched,
                "remap_visits_saved": saved,
                "remap_rounds": refinements,
                "remap_tasks": 30,
            }
        )
    return rows


def _mutation_with_sessions(**overrides):
    payload = _mutation_payload()
    rows = _session_rows()
    for row in rows:
        if row["sessions"] == overrides.get("at", 8):
            row.update({k: v for k, v in overrides.items() if k != "at"})
    payload["mutation"]["rows"].extend(rows)
    return payload


class TestSessionRemapGate:
    """The batched-session-remap floors on the sessions-S sweep rows."""

    def _both(self, tmp_path, name, extra):
        payload = _payload()
        payload.update(extra)
        return _write(tmp_path, name, payload)

    def test_healthy_sweep_passes(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _mutation_with_sessions())
        cur = self._both(tmp_path, "cur.json", _mutation_with_sessions())
        assert gate.main([cur, base]) == 0

    def test_zero_savings_at_large_s_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_with_sessions())
        cur = self._both(
            tmp_path, "cur.json", _mutation_with_sessions(remap_visits_saved=0)
        )
        assert gate.main([cur, base]) == 1
        assert "remap_visits_saved" in capsys.readouterr().err

    def test_small_s_rows_not_held_to_floor(self, gate, tmp_path):
        # S=1 legitimately saves nothing; only S >= 4 rows carry the floor.
        base = self._both(tmp_path, "base.json", _mutation_with_sessions())
        cur = self._both(
            tmp_path,
            "cur.json",
            _mutation_with_sessions(at=1, remap_visits_saved=0),
        )
        assert gate.main([cur, base]) == 0

    def test_missing_sweep_fails_when_baseline_has_it(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _mutation_with_sessions())
        cur = self._both(tmp_path, "cur.json", _mutation_payload())
        assert gate.main([cur, base]) == 1
        assert "--sessions" in capsys.readouterr().err

    def test_batched_visits_above_s_times_single_fails(self, gate, tmp_path, capsys):
        # saved still positive, but batched visits regressed to linear-in-S:
        # the anchor is the sessions-1 row (16), so 8 x 16 = 128 is the bar.
        base = self._both(tmp_path, "base.json", _mutation_with_sessions())
        cur = self._both(
            tmp_path, "cur.json",
            _mutation_with_sessions(remap_visits=130, remap_visits_saved=5),
        )
        assert gate.main([cur, base]) == 1
        assert "S x per-session" in capsys.readouterr().err

    def test_committed_baseline_has_session_sweep(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.mutation_rows(payload)
        sweep = {s: r for s, r in rows.items() if s.startswith("sessions-")}
        assert sweep, "baseline.json must carry the --sessions sweep"
        big = max(sweep.values(), key=lambda r: r["sessions"])
        assert big["sessions"] >= 4
        assert big["remap_visits_saved"] > 0
        assert big["remap_visits"] < big["sessions"] * (
            big["remap_visits"] + big["remap_visits_saved"]
        )


def _baselines_payload(visits=398, traffic=7.197, messages=793, supersteps=26,
                       drift_backend=None):
    rows = []
    for algorithm in ("disReachm", "disDistm"):
        for backend in ("process", "sequential", "thread"):
            row = {
                "algorithm": algorithm,
                "backend": backend,
                "answers": "FTF",
                "total_visits": visits,
                "traffic_KB": traffic,
                "messages": messages,
                "supersteps": supersteps,
                "time_ms": 15.0,
            }
            if drift_backend == backend and algorithm == "disReachm":
                row["total_visits"] = visits + 7
            rows.append(row)
    return {"baselines": {"columns": [], "rows": rows}}


class TestBaselinesGate:
    """Exact cross-backend identity of the sharded Pregel baselines."""

    def _both(self, tmp_path, name, extra):
        payload = _payload()
        payload.update(extra)
        return _write(tmp_path, name, payload)

    def test_identical_rows_pass(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        cur = self._both(tmp_path, "cur.json", _baselines_payload())
        assert gate.main([cur, base]) == 0

    def test_backend_divergence_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        cur = self._both(
            tmp_path, "cur.json", _baselines_payload(drift_backend="process")
        )
        assert gate.main([cur, base]) == 1
        assert "cross-backend identity" in capsys.readouterr().err

    def test_drift_from_committed_baseline_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        cur = self._both(tmp_path, "cur.json", _baselines_payload(visits=500))
        assert gate.main([cur, base]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_wall_time_never_compared(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        payload = _baselines_payload()
        for row in payload["baselines"]["rows"]:
            row["time_ms"] = 999.0
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 0

    def test_missing_backend_row_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        payload = _baselines_payload()
        payload["baselines"]["rows"] = [
            row for row in payload["baselines"]["rows"]
            if row["backend"] != "process"
        ]
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 1
        assert "backend dropped out" in capsys.readouterr().err

    def test_missing_algorithm_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        payload = _baselines_payload()
        payload["baselines"]["rows"] = [
            row for row in payload["baselines"]["rows"]
            if row["algorithm"] != "disDistm"
        ]
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 1
        assert "no sequential row" in capsys.readouterr().err

    def test_baselines_required_when_baseline_has_them(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _baselines_payload())
        cur = _write(tmp_path, "cur.json", _payload())
        with pytest.raises(SystemExit, match="baselines"):
            gate.main([cur, base])

    def test_committed_baseline_has_baselines_experiment(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.baselines_rows(payload)
        assert rows, "baseline.json must carry the pinned baselines run"
        backends = {backend for _a, backend in rows}
        assert backends == {"sequential", "thread", "process", "socket"}


def _kernels_payload(visits=24, traffic=97.526, messages=48, supersteps=6,
                     speedup=6.5, kernels=("python", "numpy"),
                     drift_pair=None):
    rows = []
    for dataset in ("amazon", "youtube"):
        for kernel in kernels:
            for backend in ("process", "sequential", "thread"):
                row = {
                    "dataset": dataset,
                    "mode": "evaluate",
                    "kernel": kernel,
                    "backend": backend,
                    "answers": "FTF",
                    "total_visits": visits,
                    "traffic_KB": traffic,
                    "messages": messages,
                    "supersteps": supersteps,
                    "eval_ms": 50.0,
                }
                if drift_pair == (kernel, backend) and dataset == "amazon":
                    row["total_visits"] = visits + 3
                rows.append(row)
    for kernel in kernels:
        rows.append(
            {
                "dataset": "amazon",
                "mode": "jobs",
                "kernel": kernel,
                "eval_ms": 90.0 if kernel == "python" else 90.0 / speedup,
                "speedup": 1.0 if kernel == "python" else speedup,
            }
        )
    return {"kernels": {"columns": [], "rows": rows}}


class TestKernelsGate:
    """Kernel bit-identity (exact) + the numpy wall-clock speedup floor."""

    def _both(self, tmp_path, name, extra):
        payload = _payload()
        payload.update(extra)
        return _write(tmp_path, name, payload)

    def test_identical_rows_pass(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = self._both(tmp_path, "cur.json", _kernels_payload())
        assert gate.main([cur, base]) == 0

    def test_kernel_divergence_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = self._both(
            tmp_path, "cur.json",
            _kernels_payload(drift_pair=("numpy", "thread")),
        )
        assert gate.main([cur, base]) == 1
        assert "kernel identity broken" in capsys.readouterr().err

    def test_drift_from_committed_baseline_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = self._both(tmp_path, "cur.json", _kernels_payload(visits=99))
        assert gate.main([cur, base]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_speedup_below_floor_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = self._both(tmp_path, "cur.json", _kernels_payload(speedup=3.0))
        assert gate.main([cur, base]) == 1
        assert "below the floor" in capsys.readouterr().err

    def test_eval_ms_never_compared(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        payload = _kernels_payload()
        for row in payload["kernels"]["rows"]:
            row["eval_ms"] = 9999.0
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 0

    def test_missing_required_kernel_leg_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        payload = _kernels_payload()
        payload["kernels"]["rows"] = [
            row for row in payload["kernels"]["rows"]
            if not (row["kernel"] == "numpy" and row.get("backend") == "process")
        ]
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 1
        assert "kernel leg dropped out" in capsys.readouterr().err

    def test_numba_rows_optional_but_compared_when_present(
        self, gate, tmp_path, capsys
    ):
        # absent entirely: fine (numba never required) ...
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = self._both(tmp_path, "cur.json", _kernels_payload())
        assert gate.main([cur, base]) == 0
        # ... present and divergent: held to the same identity bar
        cur = self._both(
            tmp_path, "cur2.json",
            _kernels_payload(
                kernels=("python", "numpy", "numba"),
                drift_pair=("numba", "sequential"),
            ),
        )
        assert gate.main([cur, base]) == 1
        assert "numba" in capsys.readouterr().err

    def test_missing_jobs_row_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        payload = _kernels_payload()
        payload["kernels"]["rows"] = [
            row for row in payload["kernels"]["rows"] if row["mode"] != "jobs"
        ]
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 1
        assert "pinned speedup row missing" in capsys.readouterr().err

    def test_missing_reference_row_fails(self, gate, tmp_path, capsys):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        payload = _kernels_payload()
        payload["kernels"]["rows"] = [
            row for row in payload["kernels"]["rows"]
            if not (
                row["dataset"] == "youtube"
                and row["kernel"] == "python"
                and row.get("backend") == "sequential"
            )
        ]
        cur = self._both(tmp_path, "cur.json", payload)
        assert gate.main([cur, base]) == 1
        assert "no python/sequential evaluate row" in capsys.readouterr().err

    def test_kernels_required_when_baseline_has_them(self, gate, tmp_path):
        base = self._both(tmp_path, "base.json", _kernels_payload())
        cur = _write(tmp_path, "cur.json", _payload())
        with pytest.raises(SystemExit, match="kernels"):
            gate.main([cur, base])

    def test_workload_only_baseline_skips_kernel_checks(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _payload())
        cur = self._both(tmp_path, "cur.json", _kernels_payload(speedup=0.5))
        assert gate.main([cur, base]) == 0

    def test_committed_baseline_has_kernels_experiment(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.kernels_rows(payload)
        assert rows, "baseline.json must carry the pinned kernels run"
        kernels = {k for _d, mode, k, _b in rows if mode == "evaluate"}
        assert set(gate.REQUIRED_KERNELS) <= kernels
        jobs = rows.get(("amazon", "jobs", "numpy", "None"))
        assert jobs is not None
        assert jobs["speedup"] >= gate.KERNEL_SPEEDUP_FLOOR


def _snap_payload(
    refined_vf=20,
    env_ok=1,
    replay_match=1,
    refines=3,
    traffic=0.5,
    answers="TF",
    drift_answers=None,
):
    """A minimal snap-experiment payload (one fixture dataset)."""
    rows = [
        {"dataset": "fixture-plain", "mode": "load", "nodes": 27, "edges": 64},
    ]
    for partitioner, vf in (("hash", 27), ("refined", refined_vf)):
        for algorithm in ("disReach", "disDist"):
            for backend in ("sequential", "thread"):
                rows.append(
                    {
                        "dataset": "fixture-plain",
                        "mode": "static",
                        "partitioner": partitioner,
                        "algorithm": algorithm,
                        "backend": backend,
                        "kernel": "python",
                        "Vf": vf,
                        "bound": vf * vf,
                        "traffic_KB": traffic * (2 if partitioner == "hash" else 1),
                        "network_ms": 1.0,
                        "visits": 16,
                        "answers": (
                            drift_answers
                            if drift_answers and backend == "thread"
                            else answers
                        ),
                        "env_ok": env_ok,
                    }
                )
    rows.append(
        {
            "dataset": "fixture-plain",
            "mode": "replay",
            "partitioner": "hash",
            "replayed": 64,
            "replay_match": replay_match,
        }
    )
    rows.append(
        {
            "dataset": "fixture-plain",
            "mode": "replay-monitor",
            "partitioner": "hash",
            "replayed": 64,
            "refines": refines,
            "moves": 12,
        }
    )
    return {"snap": {"columns": [], "rows": rows}}


class TestSnapGate:
    """The real-graph harness gate: envelopes, replay identity, refined wins."""

    def test_identical_runs_pass(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _snap_payload())
        assert gate.main([cur, base, "--only", "snap"]) == 0

    def test_envelope_escape_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _snap_payload(env_ok=0))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "envelope" in capsys.readouterr().err

    def test_replay_divergence_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _snap_payload(replay_match=0))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "replay" in capsys.readouterr().err

    def test_answer_divergence_across_cells_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _snap_payload(drift_answers="FT"))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "agnosticism broken" in capsys.readouterr().err

    def test_refined_losing_to_hash_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        # refined Vf above hash's 27 AND higher traffic than hash's 2x leg
        cur = _write(
            tmp_path, "cur.json", _snap_payload(refined_vf=40, traffic=1.5)
        )
        assert gate.main([cur, base, "--only", "snap"]) == 1
        err = capsys.readouterr().err
        assert "refined does not beat-or-tie hash" in err

    def test_vf_ceiling_is_exact(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload(refined_vf=20))
        cur = _write(tmp_path, "cur.json", _snap_payload(refined_vf=21))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "ceiling" in capsys.readouterr().err

    def test_no_refinement_fired_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _snap_payload(refines=0))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "refinement" in capsys.readouterr().err

    def test_baseline_answer_drift_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload(answers="TF"))
        cur = _write(tmp_path, "cur.json", _snap_payload(answers="TT"))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "differ from the baseline" in capsys.readouterr().err

    def test_traffic_regression_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload(traffic=0.5))
        cur = _write(tmp_path, "cur.json", _snap_payload(traffic=0.8))
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_dropped_cell_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _snap_payload())
        payload = _snap_payload()
        payload["snap"]["rows"] = [
            row
            for row in payload["snap"]["rows"]
            if not (
                row.get("mode") == "static" and row.get("backend") == "thread"
            )
        ]
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main([cur, base, "--only", "snap"]) == 1
        assert "silently skipped" in capsys.readouterr().err

    def test_snap_required_when_baseline_has_it(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _snap_payload())
        cur = _write(tmp_path, "cur.json", _payload())
        with pytest.raises(SystemExit, match="snap"):
            gate.main([cur, base, "--only", "snap"])

    def test_committed_baseline_has_snap_experiment(self, gate):
        payload = gate.load_payload(SCRIPT.parent / "baseline.json")
        rows = gate.snap_rows(payload)
        assert rows, "baseline.json must carry the pinned snap fixture run"
        modes = {str(row.get("mode")) for row in rows}
        assert {"load", "static", "replay", "replay-monitor"} <= modes
        assert all(
            row.get("env_ok") == 1 for row in rows if row.get("mode") == "static"
        )
