"""The CI benchmark-regression gate script (``benchmarks/check_regression.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(traffic=10.0, network=1.0, visits=4, hit_rate=0.8, speedup=5.0):
    return {
        "workload": {
            "columns": [],
            "rows": [
                {
                    "mode": "one-by-one",
                    "traffic_KB": 100.0,
                    "network_ms": 50.0,
                    "visits": 400,
                },
                {
                    "mode": "batch",
                    "traffic_KB": traffic,
                    "network_ms": network,
                    "visits": visits,
                    "hit_rate": hit_rate,
                    "speedup": speedup,
                },
            ],
        }
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestGate:
    def test_identical_runs_pass(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload())
        assert gate.main([cur, base]) == 0
        assert "no regression" not in capsys.readouterr().err

    def test_within_tolerance_passes(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=12.0))
        assert gate.main([cur, base]) == 0

    def test_cost_regression_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=13.0))
        assert gate.main([cur, base]) == 1
        assert "batch/traffic_KB" in capsys.readouterr().err

    def test_floor_violations_fail(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(hit_rate=0.3, speedup=1.2))
        assert gate.main([cur, base]) == 1
        err = capsys.readouterr().err
        assert "hit_rate" in err and "speedup" in err

    def test_improvement_suggests_baseline_refresh(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload())
        cur = _write(tmp_path, "cur.json", _payload(traffic=2.0))
        assert gate.main([cur, base]) == 0
        assert "refreshing" in capsys.readouterr().out

    def test_step_summary_written(self, gate, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base = _write(tmp_path, "base.json", _payload())
        assert gate.main([base, base]) == 0
        assert "Benchmark regression gate" in summary.read_text()

    def test_missing_experiment_rejected(self, gate, tmp_path):
        bad = _write(tmp_path, "bad.json", {"table2": {"rows": []}})
        good = _write(tmp_path, "good.json", _payload())
        with pytest.raises(SystemExit):
            gate.main([bad, good])

    def test_committed_baseline_is_wellformed(self, gate):
        baseline = SCRIPT.parent / "baseline.json"
        rows = gate.load_rows(baseline)
        assert {"one-by-one", "batch"} <= set(rows)
        assert gate.main([str(baseline), str(baseline)]) == 0
