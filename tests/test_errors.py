"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DistributedError,
    FragmentationError,
    GraphError,
    MapReduceError,
    NodeNotFound,
    QueryError,
    RegexSyntaxError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            NodeNotFound,
            RegexSyntaxError,
            FragmentationError,
            QueryError,
            DistributedError,
            MapReduceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_node_not_found_is_graph_error(self):
        assert issubclass(NodeNotFound, GraphError)

    def test_node_not_found_carries_node(self):
        err = NodeNotFound(("x", 3))
        assert err.node == ("x", 3)
        assert "('x', 3)" in str(err)

    def test_regex_error_position_formatting(self):
        err = RegexSyntaxError("bad", position=7)
        assert "position 7" in str(err)
        assert err.position == 7

    def test_regex_error_without_position(self):
        err = RegexSyntaxError("bad")
        assert str(err) == "bad"
        assert err.position is None

    def test_one_catch_for_everything(self):
        for exc in (GraphError("x"), QueryError("y"), MapReduceError("z")):
            with pytest.raises(ReproError):
                raise exc
