"""Integration: every algorithm must agree with every other on every input.

The cross-product being checked (per random graph/partition/query):

* disReach == disReachn == disReachm == centralized BFS;
* disDist == disDistn == centralized bounded BFS;
* disRPQ == disRPQn == disRPQd == MRdRPQ == centralized product search;
* qr(s,t) == qrr(s,t,".*")  (the paper's Remark in Section 2.2);
* qbr(s,t,l) == qrr with (.?)^(l-1)  and  qbr with huge l == qr.
"""

import random

import pytest

from repro.baselines import dis_dist_n, dis_reach_m, dis_reach_n, dis_rpq_d, dis_rpq_n
from repro.core import (
    bounded_reachable,
    dis_dist,
    dis_reach,
    dis_rpq,
    reachable,
    regular_reachable,
)
from repro.distributed import SimulatedCluster
from repro.graph import erdos_renyi, synthetic_graph
from repro.mapreduce import mrd_rpq
from repro.partition import PARTITIONERS


def _cases():
    cases = []
    for seed in range(6):
        rng = random.Random(seed)
        n = rng.randrange(8, 50)
        g = erdos_renyi(n, rng.randrange(0, 3 * n), seed=seed, num_labels=3)
        k = rng.randrange(1, 6)
        name = rng.choice(sorted(PARTITIONERS))
        cluster = SimulatedCluster.from_graph(g, k, name, seed=seed)
        cases.append((seed, g, cluster, rng))
    return cases


CASES = _cases()


@pytest.mark.parametrize("case", range(len(CASES)))
class TestReachabilityFamily:
    def test_all_reach_algorithms_agree(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(6):
            s, t = rng.choice(nodes), rng.choice(nodes)
            expected = reachable(g, s, t)
            assert dis_reach(cluster, (s, t)).answer == expected, (seed, s, t)
            assert dis_reach_n(cluster, (s, t)).answer == expected, (seed, s, t)
            assert dis_reach_m(cluster, (s, t)).answer == expected, (seed, s, t)

    def test_reach_equals_wildcard_rpq(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(4):
            s, t = rng.choice(nodes), rng.choice(nodes)
            qr = dis_reach(cluster, (s, t)).answer
            qrr = dis_rpq(cluster, (s, t, ". *")).answer
            assert qr == qrr, (seed, s, t)


@pytest.mark.parametrize("case", range(len(CASES)))
class TestBoundedFamily:
    def test_bounded_algorithms_agree(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(5):
            s, t = rng.choice(nodes), rng.choice(nodes)
            bound = rng.randrange(0, 9)
            expected = bounded_reachable(g, s, t, bound)
            assert dis_dist(cluster, (s, t, bound)).answer == expected
            assert dis_dist_n(cluster, (s, t, bound)).answer == expected

    def test_huge_bound_equals_reachability(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(4):
            s, t = rng.choice(nodes), rng.choice(nodes)
            assert (
                dis_dist(cluster, (s, t, g.num_nodes + 1)).answer
                == dis_reach(cluster, (s, t)).answer
            )

    def test_bounded_equals_counted_wildcard_rpq(self, case):
        from repro.automata.ast import Epsilon, Wildcard, concat, optional

        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(3):
            s, t = rng.choice(nodes), rng.choice(nodes)
            bound = rng.randrange(1, 5)
            hops = [optional(Wildcard())] * (bound - 1)
            regex = concat(*hops) if hops else Epsilon()
            qbr = dis_dist(cluster, (s, t, bound)).answer
            qrr = dis_rpq(cluster, (s, t, regex)).answer
            assert qbr == qrr, (seed, s, t, bound)


REGEXES = ["L0* | L1*", ". *", "L2 L1* L0?", "(L0 | L1)+ L2*", "()", "L0 . L1"]


@pytest.mark.parametrize("case", range(len(CASES)))
class TestRegularFamily:
    def test_all_rpq_algorithms_agree(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(4):
            s, t = rng.choice(nodes), rng.choice(nodes)
            regex = rng.choice(REGEXES)
            expected = regular_reachable(g, s, t, regex)
            assert dis_rpq(cluster, (s, t, regex)).answer == expected, (seed, s, t, regex)
            assert dis_rpq_n(cluster, (s, t, regex)).answer == expected
            assert dis_rpq_d(cluster, (s, t, regex)).answer == expected

    def test_mapreduce_agrees(self, case):
        seed, g, cluster, rng = CASES[case]
        nodes = sorted(g.nodes())
        for _ in range(3):
            s, t = rng.choice(nodes), rng.choice(nodes)
            regex = rng.choice(REGEXES)
            expected = regular_reachable(g, s, t, regex)
            k = rng.randrange(1, 5)
            assert mrd_rpq(g, (s, t, regex), k).answer == expected, (seed, s, t, regex, k)


class TestScaleSmoke:
    """One moderately large case to catch asymptotic blowups."""

    @pytest.mark.slow
    def test_synthetic_10k(self):
        g = synthetic_graph(4000, 12000, num_labels=5, seed=1)
        cluster = SimulatedCluster.from_graph(g, 8, "chunk")
        nodes = sorted(g.nodes())
        s, t = nodes[0], nodes[-1]
        expected = reachable(g, s, t)
        assert dis_reach(cluster, (s, t)).answer == expected
        assert dis_dist(cluster, (s, t, 50)).answer == bounded_reachable(g, s, t, 50)
        assert (
            dis_rpq(cluster, (s, t, ". *")).answer == expected
        )
