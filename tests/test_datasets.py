"""Unit tests for the dataset stand-ins."""

import pytest

from repro.errors import ReproError
from repro.workload import DATASETS, load_dataset


#: The generated stand-ins (everything except the real SNAP downloads).
SYNTHETIC = sorted(
    name for name, spec in DATASETS.items() if spec.family != "snap"
)


class TestSpecs:
    def test_all_registered_datasets_present(self):
        assert set(DATASETS) == {
            "livejournal", "wikitalk", "berkstan", "notredame", "amazon",
            "citation", "meme", "youtube", "internet",
            # real SNAP downloads (repro.workload.snap)
            "wiki-Vote", "ego-facebook", "soc-Slashdot0811",
            "soc-LiveJournal1",
            # pinned high-diameter topologies (DESIGN.md §13)
            "path", "grid", "longcycle",
        }

    def test_paper_sizes_recorded(self):
        assert DATASETS["livejournal"].paper_nodes == 2_541_032
        assert DATASETS["livejournal"].paper_edges == 20_000_001
        assert DATASETS["youtube"].num_labels == 12
        assert DATASETS["citation"].num_labels == 6300
        assert DATASETS["internet"].paper_fragments == 10

    def test_snap_specs_are_real_unlabeled_graphs(self):
        from repro.workload.snap import SNAP_SPECS

        snap = {n for n, s in DATASETS.items() if s.family == "snap"}
        assert snap == set(SNAP_SPECS)
        for name in snap:
            assert DATASETS[name].num_labels == 0
            assert DATASETS[name].paper_nodes == SNAP_SPECS[name].nodes
            assert DATASETS[name].paper_edges == SNAP_SPECS[name].edges


@pytest.mark.parametrize("name", SYNTHETIC)
class TestLoading:
    def test_scaled_sizes(self, name):
        g = load_dataset(name, scale=0.002, seed=1)
        spec = DATASETS[name]
        expected_nodes = max(200, int(spec.paper_nodes * 0.002))
        assert g.num_nodes == expected_nodes
        if spec.family in ("path", "grid", "longcycle"):
            # Structural topologies: |E| is determined by the shape, the
            # spec's edge count is paper-size bookkeeping only.
            assert g.num_edges >= expected_nodes - 1
            return
        expected_edges = max(expected_nodes, int(spec.paper_edges * 0.002))
        assert abs(g.num_edges - expected_edges) <= expected_edges * 0.15

    def test_labels_match_spec(self, name):
        g = load_dataset(name, scale=0.002, seed=1)
        spec = DATASETS[name]
        if spec.num_labels:
            assert 0 < len(g.label_alphabet()) <= spec.num_labels
        else:
            assert g.label_alphabet() == set()

    def test_deterministic(self, name):
        assert load_dataset(name, scale=0.002, seed=3) == load_dataset(
            name, scale=0.002, seed=3
        )


class TestErrors:
    def test_unknown_dataset(self):
        with pytest.raises(ReproError, match="unknown dataset"):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(ReproError):
            load_dataset("amazon", scale=0)

    def test_missing_snap_download_names_the_command(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with pytest.raises(ReproError, match="repro.workload.snap download wiki-Vote"):
            load_dataset("wiki-Vote")


class TestShapes:
    def test_social_graph_has_hubs(self):
        g = load_dataset("livejournal", scale=0.001, seed=2)
        indegs = sorted((g.in_degree(n) for n in g.nodes()), reverse=True)
        assert indegs[0] >= 10  # heavy-tailed head

    def test_citation_is_mostly_backward(self):
        g = load_dataset("citation", scale=0.002, seed=2)
        backward = sum(1 for u, v in g.edges() if v < u)
        assert backward == g.num_edges  # strictly acyclic by construction

    def test_copurchase_is_local(self):
        g = load_dataset("amazon", scale=0.002, seed=2)
        n = g.num_nodes
        local = sum(
            1
            for u, v in g.edges()
            if min((v - u) % n, (u - v) % n) < 20  # either direction: basket locality
        )
        assert local / g.num_edges > 0.9
