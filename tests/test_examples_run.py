"""The example scripts must run end to end (they are executable docs)."""

import os
import pathlib
import subprocess
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((_REPO_ROOT / "examples").glob("*.py"))

#: Subprocesses don't inherit pytest's in-process sys.path (pyproject's
#: ``pythonpath = ["src"]``), so make the src layout importable explicitly.
_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(_REPO_ROOT / "src"), os.environ.get("PYTHONPATH")) if p
    ),
}


def _run_example(script, timeout):
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_ENV,
    )


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert "social_recommendation.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = _run_example(script, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"


def test_quickstart_shows_guarantee():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    proc = _run_example(script, timeout=120)
    assert "visits per site" in proc.stdout


def test_social_recommendation_matches_paper():
    script = next(p for p in EXAMPLES if p.name == "social_recommendation.py")
    proc = _run_example(script, timeout=120)
    out = proc.stdout
    assert "xAnn = xMat ∨ xPat" in out or "xAnn = xPat ∨ xMat" in out
    assert "Example 7" in out
