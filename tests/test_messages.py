"""Unit tests for the traffic size model."""

import pytest

from repro.core.bes import TRUE
from repro.distributed import MessageKind, payload_size
from repro.distributed.messages import equation_set_size
from repro.graph import DiGraph


class TestPayloadSize:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, 1),
            (True, 1),
            (False, 1),
            (42, 8),
            (3.14, 8),
            ("ab", 2),
            ("", 1),
            (b"abc", 3),
            ((), 2),
            ([1, 2], 2 + 16),
            ({1: "a"}, 2 + 8 + 1),
            (frozenset({1}), 2 + 8),
        ],
    )
    def test_primitives(self, value, expected):
        assert payload_size(value) == expected

    def test_utf8_length(self):
        assert payload_size("é") == 2

    def test_enum_sized_by_value(self):
        assert payload_size(MessageKind.QUERY) == len("query")

    def test_nested_structures(self):
        value = {"xs": [1, 2, 3]}
        assert payload_size(value) == 2 + 2 + (2 + 24)

    def test_true_token(self):
        assert payload_size(TRUE) == 1

    def test_graph_payload(self):
        g = DiGraph.from_edges([("a", "b")], labels={"a": "HR"})
        # 2 + (a+HR) + (b+None) + (a+b per edge)
        assert g.payload_size() == 2 + (1 + 2) + (1 + 1) + (1 + 1)

    def test_monotone_in_content(self):
        small = {"a": [1]}
        big = {"a": [1, 2, 3, 4]}
        assert payload_size(small) < payload_size(big)

    def test_queries_are_sizeable(self):
        from repro.core import BoundedReachQuery, ReachQuery, RegularReachQuery

        assert payload_size(ReachQuery("a", "b")) > 0
        assert payload_size(BoundedReachQuery("a", "b", 3)) > 0
        assert payload_size(RegularReachQuery("a", "b", "x* | y")) > 0

    def test_automaton_is_sizeable(self):
        from repro.automata import QueryAutomaton

        small = QueryAutomaton.build("a", "s", "t")
        big = QueryAutomaton.build("a b c d e f | g h*", "s", "t")
        assert payload_size(small) < payload_size(big)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            payload_size(object())


class TestEquationSetSize:
    def test_prefers_sparse_for_thin_rows(self):
        # 1000 columns, rows with a single disjunct: sparse (4B) < dense (125B)
        size = equation_set_size(["r"], ["c"] * 0, [1], 1000)
        assert size == 2 + 1 + (2 * 1 + 2)

    def test_prefers_dense_for_fat_rows(self):
        # 80 columns, a row with 60 disjuncts: dense (10B) < sparse (122B)
        size = equation_set_size(["r"], [], [60], 80)
        assert size == 2 + 1 + 10

    def test_ids_are_charged(self):
        base = equation_set_size([], [], [], 8)
        with_ids = equation_set_size(["row"], ["col"], [], 8)
        assert with_ids == base + 3 + 3

    def test_scales_with_rows(self):
        one = equation_set_size(["r1"], [], [3], 64)
        two = equation_set_size(["r1", "r2"], [], [3, 3], 64)
        assert two > one
