"""Unit tests for the simulated cluster and run accounting."""

import pytest

from repro.distributed import MessageKind, SimulatedCluster
from repro.errors import DistributedError, QueryError
from repro.graph import erdos_renyi
from repro.partition import build_fragmentation, check_fragmentation


@pytest.fixture
def cluster():
    g = erdos_renyi(30, 60, seed=1)
    return SimulatedCluster.from_graph(g, 3, partitioner="chunk")


class TestConstruction:
    def test_from_graph_partitioner_names(self):
        g = erdos_renyi(20, 40, seed=0)
        for name in ["random", "hash", "chunk", "bfs", "greedy"]:
            c = SimulatedCluster.from_graph(g, 2, partitioner=name, seed=1)
            assert c.num_sites == 2

    def test_from_graph_custom_partitioner(self):
        g = erdos_renyi(10, 20, seed=0)
        c = SimulatedCluster.from_graph(g, 2, partitioner=lambda g, k: {n: 0 for n in g.nodes()})
        assert c.fragmentation[0].nodes == set(g.nodes())

    def test_rejects_empty_fragmentation(self):
        from repro.partition import Fragmentation

        with pytest.raises(DistributedError):
            SimulatedCluster(Fragmentation([], {}))

    def test_rejects_bad_network_params(self):
        g = erdos_renyi(5, 5, seed=0)
        frag = build_fragmentation(g, {n: 0 for n in g.nodes()}, 1)
        with pytest.raises(DistributedError):
            SimulatedCluster(frag, bandwidth=0)
        with pytest.raises(DistributedError):
            SimulatedCluster(frag, latency=-1)

    def test_site_lookup(self, cluster):
        assert cluster.site(0).site_id == 0
        with pytest.raises(DistributedError):
            cluster.site(99)

    def test_site_of(self, cluster):
        node = next(iter(cluster.fragmentation.placement))
        site = cluster.site_of(node)
        assert node in site.fragment.nodes
        with pytest.raises(QueryError):
            cluster.site_of("not-a-node")


class TestRunAccounting:
    def test_broadcast_visits_every_site_once(self, cluster):
        run = cluster.start_run("x")
        run.broadcast({"q": 1})
        stats = run.finish()
        assert stats.visits_per_site() == {0: 1, 1: 1, 2: 1}
        assert stats.num_messages == 3

    def test_broadcast_charges_one_round(self, cluster):
        run = cluster.start_run("x")
        run.broadcast("abcd")
        stats = run.finish()
        expected = cluster.latency + 4 / cluster.bandwidth
        assert stats.response_seconds == pytest.approx(expected)

    def test_send_to_coordinator_outside_phase(self, cluster):
        run = cluster.start_run("x")
        run.send_to_coordinator(0, "abcd")
        stats = run.finish()
        assert stats.total_visits == 0
        assert stats.traffic_bytes == 4
        assert stats.response_seconds > 0

    def test_phase_overlaps_transfers(self, cluster):
        run = cluster.start_run("x")
        with run.parallel_phase() as phase:
            for sid in range(3):
                with phase.at(sid):
                    pass
                run.send_to_coordinator(sid, "x" * 100)
        stats = run.finish()
        # network time = one latency + max(site bytes) / bandwidth
        assert stats.response_seconds < 3 * (cluster.latency + 100 / cluster.bandwidth) + 0.01
        assert stats.traffic_bytes == 300
        assert stats.supersteps == 1

    def test_phases_cannot_nest(self, cluster):
        run = cluster.start_run("x")
        with pytest.raises(DistributedError):
            with run.parallel_phase():
                with run.parallel_phase():
                    pass

    def test_coordinator_work_charged(self, cluster):
        run = cluster.start_run("x")
        with run.coordinator_work():
            sum(range(10000))
        stats = run.finish()
        assert stats.coordinator_seconds > 0

    def test_finish_twice_raises(self, cluster):
        run = cluster.start_run("x")
        run.finish()
        with pytest.raises(DistributedError):
            run.finish()

    def test_send_to_site_counts_visit(self, cluster):
        run = cluster.start_run("x")
        run.send_to_site(1, "payload", MessageKind.TOKEN)
        stats = run.finish()
        assert stats.visits[1] == 1

    def test_wall_seconds_set(self, cluster):
        run = cluster.start_run("x")
        stats = run.finish()
        assert stats.wall_seconds >= 0


class TestSiteIndexCache:
    def test_get_index_builds_once(self, cluster):
        calls = []

        def builder(fragment):
            calls.append(fragment.fid)
            return object()

        site = cluster.site(0)
        first = site.get_index("tc", builder)
        second = site.get_index("tc", builder)
        assert first is second
        assert calls == [0]
        site.invalidate_indexes()
        site.get_index("tc", builder)
        assert len(calls) == 2


class TestApplyEdgeMutation:
    """In-place edge mutation: intra- and cross-fragment bookkeeping."""

    @pytest.fixture
    def mutable(self):
        g = erdos_renyi(24, 60, seed=5, num_labels=3)
        cluster = SimulatedCluster.from_graph(g, 3, partitioner="hash", seed=0)
        return g, cluster

    def _pair(self, g, cluster, cross, existing):
        placement = cluster.fragmentation.placement
        for u in sorted(g.nodes()):
            for v in sorted(g.nodes()):
                if u == v or (placement[u] != placement[v]) != cross:
                    continue
                if g.has_edge(u, v) == existing:
                    return u, v
        raise AssertionError("no such pair")

    def test_intra_add_and_remove(self, mutable):
        g, cluster = mutable
        u, v = self._pair(g, cluster, cross=False, existing=False)
        fid = cluster.fragmentation.placement[u]
        v0 = cluster.fragment_version(fid)
        assert cluster.apply_edge_mutation(u, v, add=True) == (fid,)
        assert cluster.fragment_version(fid) == v0 + 1
        g.add_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)
        assert cluster.apply_edge_mutation(u, v, add=False) == (fid,)
        g.remove_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)
        assert cluster.fragment_version(fid) == v0 + 2

    def test_cross_add_and_remove_rebuild_anatomy(self, mutable):
        g, cluster = mutable
        u, v = self._pair(g, cluster, cross=True, existing=False)
        placement = cluster.fragmentation.placement
        fu, fv = placement[u], placement[v]
        versions = {fid: cluster.fragment_version(fid) for fid in (fu, fv)}
        affected = cluster.apply_edge_mutation(u, v, add=True)
        assert set(affected) == {fu, fv}
        g.add_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)
        frag_u, frag_v = cluster.fragmentation[fu], cluster.fragmentation[fv]
        assert v in frag_u.virtual_nodes and (u, v) in frag_u.cross_edges
        assert v in frag_v.in_nodes
        assert frag_u.local_graph.label(v) == g.label(v)
        for fid in (fu, fv):
            assert cluster.fragment_version(fid) == versions[fid] + 1
        cluster.apply_edge_mutation(u, v, add=False)
        g.remove_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)

    def test_cross_remove_keeps_shared_boundary_nodes(self, mutable):
        g, cluster = mutable
        placement = cluster.fragmentation.placement
        # find a node v with >= 2 incoming cross edges from one fragment
        from collections import Counter
        incoming = Counter()
        for frag in cluster.fragmentation:
            for (_s, t) in frag.cross_edges:
                incoming[(frag.fid, t)] += 1
        (fu, v), _count = next(
            ((key, c) for key, c in incoming.items() if c >= 2), (None, None)
        )
        if fu is None:
            pytest.skip("no doubly-targeted virtual node in this instance")
        u = next(s for (s, t) in cluster.fragmentation[fu].cross_edges if t == v)
        cluster.apply_edge_mutation(u, v, add=False)
        g.remove_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)
        # v still virtual at fu (another cross edge remains) and in at fv
        assert v in cluster.fragmentation[fu].virtual_nodes
        assert v in cluster.fragmentation[placement[v]].in_nodes

    def test_validation_precedes_mutation(self, mutable):
        g, cluster = mutable
        u, v = self._pair(g, cluster, cross=True, existing=True)
        versions = {f.fid: cluster.fragment_version(f.fid)
                    for f in cluster.fragmentation}
        with pytest.raises(QueryError, match="already exists"):
            cluster.apply_edge_mutation(u, v, add=True)
        missing_u, missing_v = self._pair(g, cluster, cross=False, existing=False)
        with pytest.raises(QueryError, match="is not in the graph"):
            cluster.apply_edge_mutation(missing_u, missing_v, add=False)
        with pytest.raises(QueryError, match="not stored at any site"):
            cluster.apply_edge_mutation("ghost", u, add=True)
        check_fragmentation(g, cluster.fragmentation)
        assert versions == {
            f.fid: cluster.fragment_version(f.fid) for f in cluster.fragmentation
        }

    def test_sites_serve_replaced_fragments(self, mutable):
        g, cluster = mutable
        u, v = self._pair(g, cluster, cross=True, existing=False)
        fu = cluster.fragmentation.placement[u]
        cluster.apply_edge_mutation(u, v, add=True)
        site = cluster.site_of_fragment(fu)
        held = next(f for f in site.fragments if f.fid == fu)
        assert held is cluster.fragmentation[fu]

    def test_random_mutation_storm_stays_valid(self, mutable):
        import random as _random
        g, cluster = mutable
        rng = _random.Random(11)
        nodes = sorted(g.nodes())
        for _ in range(60):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v:
                continue
            if g.has_edge(u, v):
                cluster.apply_edge_mutation(u, v, add=False)
                g.remove_edge(u, v)
            else:
                cluster.apply_edge_mutation(u, v, add=True)
                g.add_edge(u, v)
        check_fragmentation(g, cluster.fragmentation)
        restored = cluster.fragmentation.restore_graph()
        assert sorted(restored.edges()) == sorted(g.edges())
