"""Unit tests for BFS/DFS traversal primitives."""

import pytest

from repro.graph import (
    DiGraph,
    bfs_distance,
    bfs_distances,
    bfs_order,
    descendants,
    dfs_order,
    is_reachable,
    topological_order,
)


class TestOrders:
    def test_bfs_order_levels(self, diamond):
        order = list(bfs_order(diamond, "a"))
        assert order[0] == "a"
        assert set(order[1:3]) == {"b", "c"}
        assert order[3] == "d"

    def test_dfs_order_visits_all(self, diamond):
        assert set(dfs_order(diamond, "a")) == {"a", "b", "c", "d"}

    def test_orders_respect_unreachable(self):
        g = DiGraph.from_edges([("a", "b")], nodes=["z"])
        assert set(bfs_order(g, "a")) == {"a", "b"}
        assert set(dfs_order(g, "a")) == {"a", "b"}


class TestDescendants:
    def test_excludes_source_by_default(self, diamond):
        assert descendants(diamond, "a") == {"b", "c", "d"}

    def test_source_on_cycle_is_own_descendant(self, cycle_graph):
        assert 0 in descendants(cycle_graph, 0)

    def test_include_source_flag(self, diamond):
        assert "a" in descendants(diamond, "a", include_source=True)

    def test_sink_has_no_descendants(self, diamond):
        assert descendants(diamond, "d") == set()

    def test_generic_successors_fn(self):
        def succ(n):
            return [n + 1] if n < 3 else []

        assert descendants(None, 0, successors=succ) == {1, 2, 3}

    def test_requires_graph_or_fn(self):
        with pytest.raises(ValueError):
            descendants(None, 0)


class TestReachability:
    def test_reaches_self(self, diamond):
        assert is_reachable(diamond, "a", "a")

    def test_forward_only(self, diamond):
        assert is_reachable(diamond, "a", "d")
        assert not is_reachable(diamond, "d", "a")

    def test_through_cycle(self, cycle_graph):
        assert is_reachable(cycle_graph, 1, 0)
        assert is_reachable(cycle_graph, 0, 3)
        assert not is_reachable(cycle_graph, 3, 0)


class TestDistances:
    def test_distance_zero_to_self(self, diamond):
        assert bfs_distance(diamond, "a", "a") == 0

    def test_distance_shortest(self, diamond):
        assert bfs_distance(diamond, "a", "d") == 2

    def test_distance_unreachable_none(self, diamond):
        assert bfs_distance(diamond, "d", "a") is None

    def test_distance_cutoff(self, chain_graph):
        assert bfs_distance(chain_graph, 0, 5, cutoff=5) == 5
        assert bfs_distance(chain_graph, 0, 5, cutoff=4) is None

    def test_distances_map(self, diamond):
        dist = bfs_distances(diamond, "a")
        assert dist == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_distances_cutoff_prunes(self, chain_graph):
        dist = bfs_distances(chain_graph, 0, cutoff=3)
        assert max(dist.values()) == 3
        assert 9 not in dist


class TestTopologicalOrder:
    def test_orders_dag(self, diamond):
        order = topological_order(diamond)
        pos = {n: i for i, n in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_rejects_cycle(self, cycle_graph):
        with pytest.raises(ValueError):
            topological_order(cycle_graph)
