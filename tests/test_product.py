"""Unit tests for the lazy (graph × automaton) product."""

import pytest

from repro.automata import US, UT, QueryAutomaton
from repro.graph import DiGraph, is_reachable
from repro.graph.product import product_nodes, product_successors


@pytest.fixture
def labeled_chain():
    g = DiGraph.from_edges(
        [("s", "a"), ("a", "b"), ("b", "t")],
        labels={"a": "X", "b": "Y"},
    )
    return g


class TestProductSuccessors:
    def test_label_checked_at_target(self, labeled_chain):
        qa = QueryAutomaton.build("X Y", "s", "t")
        succ = product_successors(labeled_chain, qa.successors, qa.match_fn(labeled_chain))
        # from (s, US) the only move is onto a matching X
        nexts = succ(("s", US))
        assert all(labeled_chain.label(v) == "X" for v, state in nexts if state not in (US, UT))
        assert nexts  # at least one

    def test_full_product_path(self, labeled_chain):
        qa = QueryAutomaton.build("X Y", "s", "t")
        succ = product_successors(labeled_chain, qa.successors, qa.match_fn(labeled_chain))
        assert is_reachable(None, ("s", US), ("t", UT), successors=succ)

    def test_wrong_order_unreachable(self, labeled_chain):
        qa = QueryAutomaton.build("Y X", "s", "t")
        succ = product_successors(labeled_chain, qa.successors, qa.match_fn(labeled_chain))
        assert not is_reachable(None, ("s", US), ("t", UT), successors=succ)

    def test_final_state_is_sink(self, labeled_chain):
        qa = QueryAutomaton.build("X Y", "s", "t")
        succ = product_successors(labeled_chain, qa.successors, qa.match_fn(labeled_chain))
        assert succ(("t", UT)) == []


class TestProductNodes:
    def test_only_consistent_pairs(self, labeled_chain):
        qa = QueryAutomaton.build("X", "s", "t")
        pairs = set(product_nodes(labeled_chain, qa.states(), qa.match_fn(labeled_chain)))
        assert ("s", US) in pairs
        assert ("t", UT) in pairs
        assert ("a", 0) in pairs  # a is labeled X
        assert ("b", 0) not in pairs  # b is labeled Y
        assert ("a", US) not in pairs  # only s matches us
