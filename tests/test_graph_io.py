"""Round-trip tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    DiGraph,
    erdos_renyi,
    from_edge_list,
    from_json,
    load,
    save,
    to_edge_list,
    to_json,
)


def _string_graph():
    return DiGraph.from_edges(
        [("a", "b"), ("b", "c")], labels={"a": "HR", "c": "DB"}, nodes=["lonely"]
    )


class TestEdgeList:
    def test_round_trip(self):
        g = _string_graph()
        assert from_edge_list(to_edge_list(g)) == g

    def test_comments_and_blanks_ignored(self):
        g = from_edge_list("# hi\n\na b\n")
        assert g.has_edge("a", "b")

    def test_isolated_nodes_survive(self):
        g = from_edge_list(to_edge_list(_string_graph()))
        assert g.has_node("lonely")

    def test_labels_survive(self):
        g = from_edge_list(to_edge_list(_string_graph()))
        assert g.label("a") == "HR"
        assert g.label("b") is None

    def test_bad_line_raises(self):
        with pytest.raises(GraphError):
            from_edge_list("a b c d\n")


class TestJson:
    def test_round_trip(self):
        g = _string_graph()
        assert from_json(to_json(g)) == g

    def test_round_trip_random(self):
        g = erdos_renyi(40, 100, seed=9, num_labels=3)
        # json node ids: ints survive JSON round trip
        assert from_json(to_json(g)) == g

    def test_stable_output(self):
        g = _string_graph()
        assert to_json(g) == to_json(g.copy())


class TestFiles:
    def test_save_load_json(self, tmp_path):
        g = _string_graph()
        path = tmp_path / "g.json"
        save(g, path)
        assert load(path) == g

    def test_save_load_edgelist(self, tmp_path):
        g = _string_graph()
        path = tmp_path / "g.txt"
        save(g, path)
        assert load(path) == g
