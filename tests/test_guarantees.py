"""Tests for the paper's performance guarantees (Theorems 1-3).

These are the paper's headline claims, asserted as hard invariants on real
runs: visit counts, traffic bounds in terms of |Vf| and |R|, and the
message pattern of partial evaluation.
"""

import pytest

from repro.core import dis_dist, dis_reach, dis_rpq
from repro.distributed import SimulatedCluster
from repro.graph import erdos_renyi, synthetic_graph
from repro.workload import load_dataset, random_regular_queries


def _clusters():
    """A spread of graphs and fragmentations."""
    cases = []
    for seed, k in [(0, 2), (1, 4), (2, 7)]:
        g = erdos_renyi(60, 180, seed=seed, num_labels=3)
        cases.append((g, SimulatedCluster.from_graph(g, k, "random", seed=seed)))
    g = load_dataset("amazon", scale=0.001, seed=1)
    cases.append((g, SimulatedCluster.from_graph(g, 4, "chunk")))
    return cases


class TestVisitGuarantee:
    """Theorems 1-3(b): each site is visited exactly once."""

    @pytest.mark.parametrize("case", range(4))
    def test_disreach(self, case):
        graph, cluster = _clusters()[case]
        nodes = sorted(graph.nodes(), key=repr)
        result = dis_reach(cluster, (nodes[0], nodes[-1]))
        assert result.stats.visits_per_site() == {
            sid: 1 for sid in range(cluster.num_sites)
        }

    @pytest.mark.parametrize("case", range(4))
    def test_disdist(self, case):
        graph, cluster = _clusters()[case]
        nodes = sorted(graph.nodes(), key=repr)
        result = dis_dist(cluster, (nodes[0], nodes[-1], 10))
        assert result.stats.max_visits_per_site == 1
        assert result.stats.total_visits == cluster.num_sites

    @pytest.mark.parametrize("case", range(3))
    def test_disrpq(self, case):
        graph, cluster = _clusters()[case]
        nodes = sorted(graph.nodes(), key=repr)
        result = dis_rpq(cluster, (nodes[0], nodes[-1], "L0* | L1*"))
        assert result.stats.max_visits_per_site == 1


class TestTrafficGuarantee:
    """Theorems 1-3(c): traffic bounded by O(|Vf|^2) (times |R|^2 for RPQ),
    independent of |G|."""

    def test_disreach_traffic_bound(self):
        for graph, cluster in _clusters():
            vf = cluster.fragmentation.num_boundary_nodes
            nodes = sorted(graph.nodes(), key=repr)
            result = dis_reach(cluster, (nodes[0], nodes[-1]))
            # constant cushion: ids cost <= 8B, bitsets pack 8 cols/byte
            bound = 16 * (vf + 2) * (vf + 2) + 1024
            assert result.stats.traffic_bytes <= bound

    def test_disreach_traffic_independent_of_graph_size(self):
        """Grow |G| 4x while pinning the boundary: traffic must not grow."""

        def build(num_tail):
            from repro.graph import DiGraph

            g = DiGraph()
            g.add_edge("a", "cut", create=True)
            g.add_edge("cut", "b", create=True)
            prev = "b"
            for i in range(num_tail):
                g.add_edge(prev, f"t{i}", create=True)
                prev = f"t{i}"
            assignment = {n: (0 if n in ("a", "cut") else 1) for n in g.nodes()}
            from repro.partition import build_fragmentation

            return g, SimulatedCluster(build_fragmentation(g, assignment, 2))

        small_g, small = build(10)
        large_g, large = build(400)
        r_small = dis_reach(small, ("a", small_g and "t5"))
        r_large = dis_reach(large, ("a", "t5"))
        assert large_g.size > 4 * small_g.size
        assert r_large.stats.traffic_bytes <= r_small.stats.traffic_bytes + 64

    def test_disrpq_traffic_bound(self):
        graph = synthetic_graph(150, 450, num_labels=4, seed=2)
        cluster = SimulatedCluster.from_graph(graph, 5, "random", seed=2)
        queries = random_regular_queries(graph, 3, num_states=8, seed=2)
        vf = cluster.fragmentation.num_boundary_nodes
        for query in queries:
            automaton = query.automaton()
            r = automaton.num_states
            result = dis_rpq(cluster, query)
            bound = 32 * (r * (vf + 2)) ** 2 + 4096
            assert result.stats.traffic_bytes <= bound


class TestMessagePattern:
    """Partial evaluation's communication: one broadcast, one gather."""

    @pytest.mark.parametrize("algorithm", [dis_reach, dis_dist, dis_rpq])
    def test_two_rounds_only(self, figure1, algorithm):
        _, _, cluster = figure1
        args = {
            dis_reach: ("Ann", "Mark"),
            dis_dist: ("Ann", "Mark", 6),
            dis_rpq: ("Ann", "Mark", "HR*"),
        }[algorithm]
        result = algorithm(cluster, args)
        assert result.stats.num_messages == 2 * cluster.num_sites
        assert result.stats.supersteps == 1  # one parallel phase

    def test_no_site_to_site_messages(self, figure1):
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Ann", "Mark"))
        for message in result.stats.messages:
            assert message.src == -1 or message.dst == -1


class TestResponseTimeModel:
    def test_response_bounded_by_wall(self, figure1):
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Ann", "Mark"))
        # Parallel (max-per-phase) time can exceed wall only by the modeled
        # network charges, which are tiny here.
        assert result.stats.response_seconds <= result.stats.wall_seconds + 0.01

    def test_parallelism_helps_on_many_fragments(self):
        graph = synthetic_graph(400, 1200, seed=3)
        nodes = sorted(graph.nodes())
        one = SimulatedCluster.from_graph(graph, 1, "chunk")
        many = SimulatedCluster.from_graph(graph, 8, "chunk")
        t_one = dis_reach(one, (nodes[0], nodes[-1])).stats.response_seconds
        t_many = dis_reach(many, (nodes[0], nodes[-1])).stats.response_seconds
        # 8-way partial evaluation should not be slower than single-site
        # evaluation by more than the coordinator's assembling overhead.
        assert t_many <= t_one * 2.5 + 0.05
