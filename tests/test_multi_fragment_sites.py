"""Tests for multiple fragments per site (Section 2.1's remark).

"Observe that multiple fragments may reside in a single site, and our
algorithms can be easily adapted to accommodate this."  A site holding
several fragments evaluates all of them during its single visit and ships
one combined partial answer.
"""

import pytest

from repro.core import (
    bounded_reachable,
    dis_dist,
    dis_reach,
    dis_rpq,
    reachable,
    regular_reachable,
)
from repro.baselines import dis_reach_m, dis_reach_n, dis_rpq_d
from repro.distributed import SimulatedCluster
from repro.errors import DistributedError
from repro.graph import erdos_renyi
from repro.partition import build_fragmentation, random_partition


@pytest.fixture
def packed():
    """5 fragments packed onto 2 sites (0,1,2 -> site 0; 3,4 -> site 1)."""
    g = erdos_renyi(40, 120, seed=4, num_labels=3)
    frag = build_fragmentation(g, random_partition(g, 5, seed=4), 5)
    assignment = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
    return g, SimulatedCluster(frag, fragment_assignment=assignment)


class TestConstruction:
    def test_sites_hold_fragments(self, packed):
        _, cluster = packed
        assert cluster.num_sites == 2
        assert [f.fid for f in cluster.site(0).fragments] == [0, 1, 2]
        assert [f.fid for f in cluster.site(1).fragments] == [3, 4]

    def test_site_of_follows_assignment(self, packed):
        g, cluster = packed
        for node in g.nodes():
            fid = cluster.fragmentation.fragment_of(node).fid
            expected = 0 if fid <= 2 else 1
            assert cluster.site_of(node).site_id == expected

    def test_fragment_property_rejects_multi(self, packed):
        _, cluster = packed
        with pytest.raises(DistributedError, match="holds 3 fragments"):
            cluster.site(0).fragment

    def test_rejects_partial_assignment(self):
        g = erdos_renyi(10, 20, seed=0)
        frag = build_fragmentation(g, random_partition(g, 2, seed=0), 2)
        with pytest.raises(DistributedError, match="misses"):
            SimulatedCluster(frag, fragment_assignment={0: 0})

    def test_rejects_non_contiguous_site_ids(self):
        g = erdos_renyi(10, 20, seed=0)
        frag = build_fragmentation(g, random_partition(g, 2, seed=0), 2)
        with pytest.raises(DistributedError, match="contiguous"):
            SimulatedCluster(frag, fragment_assignment={0: 0, 1: 5})


class TestCorrectness:
    def test_all_algorithms_agree_with_centralized(self, packed):
        g, cluster = packed
        nodes = sorted(g.nodes())
        for s in nodes[::7]:
            for t in nodes[::6]:
                assert dis_reach(cluster, (s, t)).answer == reachable(g, s, t)
                assert dis_reach_n(cluster, (s, t)).answer == reachable(g, s, t)
                assert dis_reach_m(cluster, (s, t)).answer == reachable(g, s, t)
                assert (
                    dis_dist(cluster, (s, t, 4)).answer
                    == bounded_reachable(g, s, t, 4)
                )
                expected = regular_reachable(g, s, t, "L0* | L1*")
                assert dis_rpq(cluster, (s, t, "L0* | L1*")).answer == expected
                assert dis_rpq_d(cluster, (s, t, "L0* | L1*")).answer == expected


class TestGuaranteesStillHold:
    def test_one_visit_per_site(self, packed):
        g, cluster = packed
        nodes = sorted(g.nodes())
        result = dis_reach(cluster, (nodes[0], nodes[-1]))
        assert result.stats.visits_per_site() == {0: 1, 1: 1}

    def test_one_partial_message_per_site(self, packed):
        g, cluster = packed
        nodes = sorted(g.nodes())
        result = dis_reach(cluster, (nodes[0], nodes[-1]))
        partials = [m for m in result.stats.messages if m.kind.value == "partial"]
        assert len(partials) == 2

    def test_fewer_sites_than_one_per_fragment(self, packed):
        g, cluster = packed
        solo = SimulatedCluster(cluster.fragmentation)
        nodes = sorted(g.nodes())
        packed_result = dis_reach(cluster, (nodes[0], nodes[-1]))
        solo_result = dis_reach(solo, (nodes[0], nodes[-1]))
        assert packed_result.answer == solo_result.answer
        assert packed_result.stats.total_visits == 2
        assert solo_result.stats.total_visits == 5
