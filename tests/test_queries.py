"""Unit tests for query value types."""

import pytest

from repro.automata import Star, Symbol, Union
from repro.core import BoundedReachQuery, ReachQuery, RegularReachQuery
from repro.errors import QueryError


class TestReachQuery:
    def test_fields_and_str(self):
        q = ReachQuery("s", "t")
        assert q.source == "s" and q.target == "t"
        assert str(q) == "qr(s, t)"

    def test_hashable(self):
        assert ReachQuery("a", "b") == ReachQuery("a", "b")
        assert hash(ReachQuery("a", "b")) == hash(ReachQuery("a", "b"))


class TestBoundedReachQuery:
    def test_fields(self):
        q = BoundedReachQuery("s", "t", 5)
        assert q.bound == 5
        assert str(q) == "qbr(s, t, 5)"

    def test_rejects_negative_bound(self):
        with pytest.raises(QueryError):
            BoundedReachQuery("s", "t", -1)

    def test_rejects_non_int_bound(self):
        with pytest.raises(QueryError):
            BoundedReachQuery("s", "t", 1.5)
        with pytest.raises(QueryError):
            BoundedReachQuery("s", "t", True)

    def test_zero_bound_allowed(self):
        assert BoundedReachQuery("s", "t", 0).bound == 0


class TestRegularReachQuery:
    def test_parses_string_regex(self):
        q = RegularReachQuery("s", "t", "DB* | HR*")
        assert q.regex == Union((Star(Symbol("DB")), Star(Symbol("HR"))))

    def test_accepts_ast(self):
        node = Star(Symbol("a"))
        q = RegularReachQuery("s", "t", node)
        assert q.regex is node

    def test_automaton_binds_endpoints(self):
        q = RegularReachQuery("s", "t", "a*")
        automaton = q.automaton()
        assert automaton.source == "s" and automaton.target == "t"

    def test_rejects_bad_regex(self):
        from repro.errors import RegexSyntaxError

        with pytest.raises(RegexSyntaxError):
            RegularReachQuery("s", "t", "a | ")

    def test_str(self):
        assert "qrr(s, t," in str(RegularReachQuery("s", "t", "a"))
