"""Unit tests for the Pregel-style BSP substrate."""

import pytest

from repro.baselines import PregelEngine
from repro.distributed import SimulatedCluster
from repro.errors import DistributedError
from repro.graph import DiGraph
from repro.partition import build_fragmentation


@pytest.fixture
def engine_setup():
    g = DiGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]
    )
    assignment = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 1}
    cluster = SimulatedCluster(build_fragmentation(g, assignment, 2))
    run = cluster.start_run("pregel-test")
    return cluster, run, PregelEngine(cluster, run)


class TestExecution:
    def test_token_propagation(self, engine_setup):
        _, run, engine = engine_setup

        def compute(ctx, messages):
            if ctx.value:
                return
            ctx.set_value(True)
            for child in ctx.successors():
                ctx.send(child, "T")

        engine.execute(compute, {"a": ["T"]})
        assert set(engine.values) == {"a", "b", "c", "d", "e"}

    def test_halt_with_stops_early(self, engine_setup):
        _, run, engine = engine_setup

        def compute(ctx, messages):
            if ctx.vertex == "c":
                ctx.halt_with("found")
                return
            for child in ctx.successors():
                ctx.send(child, "T")

        result = engine.execute(compute, {"a": ["T"]})
        assert result == "found"
        # e was never activated: the engine stopped at c's superstep.
        assert "e" not in engine.values or engine.values.get("e") is None

    def test_no_messages_returns_none(self, engine_setup):
        _, _, engine = engine_setup
        assert engine.execute(lambda ctx, msgs: None, {}) is None

    def test_superstep_limit(self, engine_setup):
        _, _, engine = engine_setup

        def ping_pong(ctx, messages):
            target = "b" if ctx.vertex == "a" else "a"
            ctx.send(target, "ping")

        with pytest.raises(DistributedError, match="supersteps"):
            engine.execute(ping_pong, {"a": ["go"]}, max_supersteps=5)

    def test_unknown_vertex_message(self, engine_setup):
        _, _, engine = engine_setup

        def compute(ctx, messages):
            ctx.send("ghost", "T")

        with pytest.raises(DistributedError, match="unknown vertex"):
            engine.execute(compute, {"a": ["T"]})


class TestAccounting:
    def test_cross_fragment_messages_visit_and_route(self, engine_setup):
        _, run, engine = engine_setup

        def compute(ctx, messages):
            if ctx.value:
                return
            ctx.set_value(True)
            for child in ctx.successors():
                ctx.send(child, "T")

        engine.execute(compute, {"a": ["T"]})
        stats = run.finish()
        # b -> c is the only cross edge: one token routed via the master,
        # two transfers (worker->master, master->worker), one visit to site 1.
        token_msgs = [m for m in stats.messages if m.kind.value == "token"]
        assert len(token_msgs) == 2
        assert stats.visits[1] == 1
        assert stats.visits[0] == 0  # intra-fragment deliveries are free

    def test_intra_fragment_messages_free(self, engine_setup):
        _, run, engine = engine_setup

        def compute(ctx, messages):
            if ctx.vertex == "a" and not ctx.value:
                ctx.set_value(True)
                ctx.send("b", "T")  # same fragment

        engine.execute(compute, {"a": ["T"]})
        stats = run.finish()
        assert stats.traffic_bytes == 0
        assert stats.total_visits == 0

    def test_supersteps_counted(self, engine_setup):
        _, run, engine = engine_setup

        def compute(ctx, messages):
            if ctx.value:
                return
            ctx.set_value(True)
            for child in ctx.successors():
                ctx.send(child, "T")

        engine.execute(compute, {"a": ["T"]})
        stats = run.finish()
        # a | b | c | d | e : 5 compute supersteps along the chain
        assert stats.supersteps == 5
