"""Unit tests for the Pregel-style BSP substrate (sharded supersteps)."""

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import pytest

from repro.baselines import PregelEngine, VertexOutcome, VertexProgram, run_superstep
from repro.distributed import SimulatedCluster
from repro.errors import DistributedError
from repro.graph import DiGraph
from repro.partition import build_fragmentation


@dataclass(frozen=True)
class FloodProgram(VertexProgram):
    """Activate once, forward a token to every successor."""

    halt_at: Optional[Any] = None

    def combine(self, messages: List[Any]) -> List[Any]:
        return messages[:1]

    def compute(self, vertex, value, messages, successors) -> VertexOutcome:
        if value:
            return VertexOutcome()
        if self.halt_at is not None and vertex == self.halt_at:
            return VertexOutcome(
                value=True, set_value=True, halt=True, result="found", report="T"
            )
        return VertexOutcome(
            value=True,
            set_value=True,
            messages=tuple((child, "T") for child, _weight in successors),
        )


@dataclass(frozen=True)
class PingPongProgram(VertexProgram):
    """Never terminates: a and b bounce a token forever."""

    def compute(self, vertex, value, messages, successors) -> VertexOutcome:
        target = "b" if vertex == "a" else "a"
        return VertexOutcome(messages=((target, "ping"),))


@dataclass(frozen=True)
class GhostProgram(VertexProgram):
    """Sends to a vertex no fragment owns."""

    def compute(self, vertex, value, messages, successors) -> VertexOutcome:
        return VertexOutcome(messages=(("ghost", "T"),))


@dataclass(frozen=True)
class SingleHopProgram(VertexProgram):
    """Only 'a' acts: activates and pings its same-fragment child 'b'."""

    def compute(self, vertex, value, messages, successors) -> VertexOutcome:
        if vertex == "a" and not value:
            return VertexOutcome(value=True, set_value=True, messages=(("b", "T"),))
        return VertexOutcome()


@pytest.fixture
def engine_setup():
    g = DiGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]
    )
    assignment = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 1}
    cluster = SimulatedCluster(build_fragmentation(g, assignment, 2))
    run = cluster.start_run("pregel-test")
    return cluster, run, PregelEngine(cluster, run)


class TestExecution:
    def test_token_propagation(self, engine_setup):
        _, run, engine = engine_setup
        engine.execute(FloodProgram(), {"a": ["T"]})
        assert set(engine.values) == {"a", "b", "c", "d", "e"}

    def test_halt_with_stops_early(self, engine_setup):
        _, run, engine = engine_setup
        result = engine.execute(FloodProgram(halt_at="c"), {"a": ["T"]})
        assert result == "found"
        # e was never activated: the engine stopped at c's superstep.
        assert "e" not in engine.values or engine.values.get("e") is None

    def test_no_messages_returns_none(self, engine_setup):
        _, _, engine = engine_setup
        assert engine.execute(FloodProgram(), {}) is None

    def test_superstep_limit(self, engine_setup):
        _, _, engine = engine_setup
        with pytest.raises(DistributedError, match="supersteps"):
            engine.execute(PingPongProgram(), {"a": ["go"]}, max_supersteps=5)

    def test_unknown_vertex_message(self, engine_setup):
        _, _, engine = engine_setup
        with pytest.raises(DistributedError, match="unknown vertex"):
            engine.execute(GhostProgram(), {"a": ["T"]})

    def test_base_program_is_abstract(self):
        with pytest.raises(NotImplementedError):
            VertexProgram().compute("a", None, ["T"], ())


class TestSuperstepTask:
    """run_superstep is a pure function — the picklable unit of sharding."""

    def _fragment(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c")])
        return build_fragmentation(g, {"a": 0, "b": 0, "c": 0}, 1)[0]

    def test_pure_and_deterministic(self):
        fragment = self._fragment()
        args = (FloodProgram(), (fragment,), {"a": ["T"]}, {"a": None}, 0)
        first = run_superstep(*args)
        second = run_superstep(*args)
        assert first == second
        assert first.updates == {"a": True}
        assert set(first.outbox) == {("b", "T", False), ("c", "T", False)}
        assert not first.halted

    def test_combiner_collapses_per_target(self):
        g = DiGraph.from_edges([("a", "c"), ("b", "c")])
        fragment = build_fragmentation(g, {"a": 0, "b": 0, "c": 0}, 1)[0]
        result = run_superstep(
            FloodProgram(), (fragment,), {"a": ["T"], "b": ["T"]}, {}, 0
        )
        # Both parents target c; the combiner keeps one token.
        assert result.outbox == (("c", "T", False),)

    def test_default_combiner_keeps_everything(self):
        @dataclass(frozen=True)
        class NoCombine(VertexProgram):
            def compute(self, vertex, value, messages, successors):
                return VertexOutcome(
                    messages=tuple((child, "T") for child, _weight in successors)
                )

        g = DiGraph.from_edges([("a", "c"), ("b", "c")])
        fragment = build_fragmentation(g, {"a": 0, "b": 0, "c": 0}, 1)[0]
        result = run_superstep(
            NoCombine(), (fragment,), {"a": ["T"], "b": ["T"]}, {}, 0
        )
        assert result.outbox == (("c", "T", False), ("c", "T", False))

    def test_halt_reported(self):
        fragment = self._fragment()
        result = run_superstep(
            FloodProgram(halt_at="a"), (fragment,), {"a": ["T"]}, {}, 0
        )
        assert result.halted and result.result == "found"
        assert result.reports == ("T",)

    def test_program_roundtrips_through_pickle(self):
        import pickle

        program = FloodProgram(halt_at="c")
        clone = pickle.loads(pickle.dumps(program))
        assert clone == program


class TestAccounting:
    def test_cross_fragment_messages_visit_and_route(self, engine_setup):
        _, run, engine = engine_setup
        engine.execute(FloodProgram(), {"a": ["T"]})
        stats = run.finish()
        # b -> c is the only cross edge: one token routed via the master,
        # two transfers (worker->master, master->worker), one visit to site 1.
        token_msgs = [m for m in stats.messages if m.kind.value == "token"]
        assert len(token_msgs) == 2
        assert stats.visits[1] == 1
        assert stats.visits[0] == 0  # intra-fragment deliveries are free

    def test_intra_fragment_messages_free(self, engine_setup):
        _, run, engine = engine_setup
        engine.execute(SingleHopProgram(), {"a": ["T"]})
        stats = run.finish()
        assert stats.traffic_bytes == 0
        assert stats.total_visits == 0

    def test_supersteps_counted(self, engine_setup):
        _, run, engine = engine_setup
        engine.execute(FloodProgram(), {"a": ["T"]})
        stats = run.finish()
        # a | b | c | d | e : 5 compute supersteps along the chain
        assert stats.supersteps == 5
