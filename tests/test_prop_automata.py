"""Property tests: regular-language laws on the automata toolchain.

Beyond agreeing with Python's ``re`` (test_properties), the NFA must honor
the algebra its constructors claim: union is language-or, concat splits
words, star accepts powers, sampling only produces members, and rendering
round-trips through the parser.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.automata import PositionNFA, parse_regex, sample_word
from repro.automata import ast as rast

ALPHABET = "ab"


@st.composite
def regexes(draw, max_depth=3):
    def build(depth):
        if depth <= 0:
            return draw(
                st.sampled_from(
                    [rast.Epsilon()] + [rast.Symbol(c) for c in ALPHABET]
                )
            )
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return draw(st.sampled_from([rast.Symbol(c) for c in ALPHABET]))
        if kind == 1:
            return rast.Concat((build(depth - 1), build(depth - 1)))
        if kind == 2:
            return rast.Union((build(depth - 1), build(depth - 1)))
        return rast.Star(build(depth - 1))

    return build(max_depth)


words = st.lists(st.sampled_from(ALPHABET), max_size=5)


@given(regexes(), regexes(), words)
@settings(max_examples=100, deadline=None)
def test_union_is_language_or(r1, r2, word):
    union = PositionNFA.from_regex(rast.Union((r1, r2)))
    either = PositionNFA.from_regex(r1).accepts(word) or PositionNFA.from_regex(
        r2
    ).accepts(word)
    assert union.accepts(word) == either


@given(regexes(), regexes(), words)
@settings(max_examples=100, deadline=None)
def test_concat_is_word_splitting(r1, r2, word):
    concat = PositionNFA.from_regex(rast.Concat((r1, r2)))
    nfa1 = PositionNFA.from_regex(r1)
    nfa2 = PositionNFA.from_regex(r2)
    splittable = any(
        nfa1.accepts(word[:i]) and nfa2.accepts(word[i:])
        for i in range(len(word) + 1)
    )
    assert concat.accepts(word) == splittable


@given(regexes(), st.integers(0, 3), st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_star_accepts_powers(regex, power, seed):
    star = PositionNFA.from_regex(rast.star(regex))
    rng = random.Random(seed)
    word = []
    for _ in range(power):
        word.extend(sample_word(regex, rng, alphabet=ALPHABET))
    assert star.accepts(word)


@given(regexes(), st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_sampled_words_are_members(regex, seed):
    word = sample_word(regex, random.Random(seed), alphabet=ALPHABET)
    assert PositionNFA.from_regex(regex).accepts(word)


@given(regexes(), words)
@settings(max_examples=100, deadline=None)
def test_render_parse_round_trip_preserves_language(regex, word):
    reparsed = parse_regex(str(regex))
    assert PositionNFA.from_regex(reparsed).accepts(word) == PositionNFA.from_regex(
        regex
    ).accepts(word)


@given(regexes(), words)
@settings(max_examples=60, deadline=None)
def test_epsilon_is_concat_identity(regex, word):
    with_eps = rast.Concat((rast.Epsilon(), regex))
    assert PositionNFA.from_regex(with_eps).accepts(word) == PositionNFA.from_regex(
        regex
    ).accepts(word)