"""Unit tests for forward closures and closure-restricted mask sweeps."""


from repro.graph import erdos_renyi
from repro.graph.reachsets import (
    forward_closure,
    reachable_seed_masks,
    reachable_seed_masks_from,
)


class TestForwardClosure:
    def test_closure_of_source(self, diamond):
        assert set(forward_closure(["a"], diamond.successors)) == {"a", "b", "c", "d"}

    def test_closure_of_sink(self, diamond):
        assert forward_closure(["d"], diamond.successors) == ["d"]

    def test_multiple_roots_deduplicated(self, diamond):
        closure = forward_closure(["b", "c", "b"], diamond.successors)
        assert sorted(closure) == ["b", "c", "d"]

    def test_empty_roots(self, diamond):
        assert forward_closure([], diamond.successors) == []

    def test_closure_is_successor_closed(self):
        g = erdos_renyi(30, 90, seed=3)
        closure = set(forward_closure([0, 5], g.successors))
        for node in closure:
            assert set(g.successors(node)) <= closure


class TestRestrictedMasks:
    def test_matches_full_sweep_on_roots(self):
        g = erdos_renyi(35, 100, seed=7)
        seeds = [1, 2, 3]
        roots = [0, 10, 20]
        full = reachable_seed_masks(g.nodes(), g.successors, seeds)
        restricted = reachable_seed_masks_from(roots, g.successors, seeds)
        for root in roots:
            assert restricted[root] == full[root]

    def test_covers_only_closure(self, diamond):
        masks = reachable_seed_masks_from(["b"], diamond.successors, ["d"])
        assert set(masks) == {"b", "d"}
        assert masks["b"] == 1

    def test_seeds_outside_closure_ignored(self, diamond):
        # "c" is not reachable from "b": its bit can never be set.
        masks = reachable_seed_masks_from(["b"], diamond.successors, ["c", "d"])
        assert masks["b"] == 0b10  # only "d"
