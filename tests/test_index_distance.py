"""Unit tests for distance oracles."""

import random

import pytest

from repro.graph import DiGraph, bfs_distance, erdos_renyi
from repro.index import BFSDistanceOracle, DistanceMatrixOracle

ORACLES = [BFSDistanceOracle, DistanceMatrixOracle]


@pytest.mark.parametrize("oracle_cls", ORACLES)
class TestDistanceOracles:
    def test_chain(self, oracle_cls, chain_graph):
        oracle = oracle_cls(chain_graph)
        assert oracle.distance(0, 0) == 0
        assert oracle.distance(0, 9) == 9
        assert oracle.distance(9, 0) is None

    def test_shortest_of_alternatives(self, oracle_cls, diamond):
        oracle = oracle_cls(diamond)
        assert oracle.distance("a", "d") == 2

    @pytest.mark.parametrize("seed", range(3))
    def test_random_matches_bfs(self, oracle_cls, seed):
        rng = random.Random(seed)
        g = erdos_renyi(30, rng.randrange(0, 120), seed=seed)
        oracle = oracle_cls(g)
        for _ in range(40):
            u, v = rng.randrange(30), rng.randrange(30)
            assert oracle.distance(u, v) == bfs_distance(g, u, v)

    def test_name(self, oracle_cls):
        assert oracle_cls(DiGraph()).name == oracle_cls.__name__


class TestMatrixSpecifics:
    def test_missing_source(self, diamond):
        oracle = DistanceMatrixOracle(diamond)
        assert oracle.distance("ghost", "a") is None
