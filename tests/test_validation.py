"""Unit tests for the fragmentation invariant checker."""

import dataclasses

import pytest

from repro.errors import FragmentationError
from repro.graph import erdos_renyi
from repro.partition import (
    Fragmentation,
    build_fragmentation,
    check_fragmentation,
    random_partition,
)


@pytest.fixture
def valid():
    g = erdos_renyi(40, 120, seed=2, num_labels=2)
    frag = build_fragmentation(g, random_partition(g, 3, seed=2), 3)
    return g, frag


class TestAccepts:
    def test_valid_fragmentation(self, valid):
        g, frag = valid
        check_fragmentation(g, frag)  # should not raise

    def test_single_fragment(self):
        g = erdos_renyi(10, 20, seed=0)
        frag = build_fragmentation(g, {n: 0 for n in g.nodes()}, 1)
        check_fragmentation(g, frag)

    def test_figure1(self, figure1):
        graph, fragmentation, _ = figure1
        check_fragmentation(graph, fragmentation)


def _tamper(frag, index, **changes):
    """Rebuild a Fragmentation with one fragment replaced."""
    fragments = list(frag.fragments)
    fragments[index] = dataclasses.replace(fragments[index], **changes)
    return Fragmentation(fragments, dict(frag.placement))


class TestRejects:
    def test_double_ownership(self, valid):
        g, frag = valid
        stolen = next(iter(frag[1].nodes))
        bad = _tamper(frag, 0, nodes=frag[0].nodes | {stolen})
        with pytest.raises(FragmentationError, match="owned by fragments"):
            check_fragmentation(g, bad)

    def test_unowned_node(self, valid):
        g, frag = valid
        dropped = next(iter(frag[0].nodes))
        bad = _tamper(frag, 0, nodes=frag[0].nodes - {dropped})
        with pytest.raises(FragmentationError):
            check_fragmentation(g, bad)

    def test_foreign_node(self, valid):
        g, frag = valid
        bad = _tamper(frag, 0, nodes=frag[0].nodes | {"ghost"})
        with pytest.raises(FragmentationError, match="absent from the graph"):
            check_fragmentation(g, bad)

    def test_missing_virtual_node(self, valid):
        g, frag = valid
        victim = next(iter(frag[0].virtual_nodes))
        bad = _tamper(frag, 0, virtual_nodes=frag[0].virtual_nodes - {victim})
        with pytest.raises(FragmentationError):
            check_fragmentation(g, bad)

    def test_wrong_in_nodes(self, valid):
        g, frag = valid
        bad = _tamper(frag, 0, in_nodes=frozenset())
        with pytest.raises(FragmentationError, match="Fi.I"):
            check_fragmentation(g, bad)

    def test_missing_cross_edge(self, valid):
        g, frag = valid
        bad = _tamper(frag, 0, cross_edges=frag[0].cross_edges[1:])
        with pytest.raises(FragmentationError):
            check_fragmentation(g, bad)

    def test_non_induced_local_graph(self, valid):
        g, frag = valid
        local = frag[0].local_graph.copy()
        owned = sorted(frag[0].nodes, key=repr)
        u, v = owned[0], owned[1]
        if local.has_edge(u, v):
            local.remove_edge(u, v)
        else:
            local.add_edge(u, v)
        bad = _tamper(frag, 0, local_graph=local)
        with pytest.raises(FragmentationError):
            check_fragmentation(g, bad)

    def test_mislabeled_node(self, valid):
        g, frag = valid
        local = frag[0].local_graph.copy()
        node = next(iter(frag[0].nodes))
        local.set_label(node, "WRONG-LABEL")
        bad = _tamper(frag, 0, local_graph=local)
        with pytest.raises(FragmentationError, match="mislabels"):
            check_fragmentation(g, bad)

    def test_placement_disagreement(self, valid):
        g, frag = valid
        placement = dict(frag.placement)
        node = next(iter(frag[0].nodes))
        placement[node] = 1
        bad = Fragmentation(list(frag.fragments), placement)
        with pytest.raises(FragmentationError):
            check_fragmentation(g, bad)
