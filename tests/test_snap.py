"""SNAP dataset layer: parser, fixtures, download cache, edge-arrival replay.

Everything here runs fully offline: the committed ``tests/data/`` fixtures
stand in for real downloads, and the download machinery is exercised
through ``file://`` URLs into a temp cache.  The one test that actually
reaches snap.stanford.edu carries the ``network`` marker and is deselected
by default (``addopts`` in ``pyproject.toml``).
"""

from __future__ import annotations

import gzip
import itertools
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.core.queries import ReachQuery
from repro.distributed.cluster import SimulatedCluster, _resolve_assignment
from repro.errors import GraphError, QueryError
from repro.graph.digraph import DiGraph
from repro.partition.builder import build_fragmentation
from repro.partition.monitor import MutationMonitor
from repro.workload import snap

DATA_DIR = Path(__file__).resolve().parent / "data"


# ---------------------------------------------------------------------------
# streaming parser
# ---------------------------------------------------------------------------
class TestParser:
    def test_basic_edges(self):
        edges = list(snap.iter_edge_list(["0\t1", "1 2", "  2   0  "]))
        assert edges == [(0, 1), (1, 2), (2, 0)]

    def test_comments_and_blanks_skipped(self):
        stats = snap.EdgeListStats()
        lines = ["# Nodes: 2 Edges: 1", "% mirror comment", "", "0\t1", ""]
        assert list(snap.iter_edge_list(lines, stats=stats)) == [(0, 1)]
        assert stats.comments == 2
        assert stats.lines == 5
        assert stats.parsed_edges == 1

    def test_self_loops_skipped_by_default(self):
        stats = snap.EdgeListStats()
        edges = list(snap.iter_edge_list(["3\t3", "3\t4"], stats=stats))
        assert edges == [(3, 4)]
        assert stats.self_loops == 1

    def test_self_loops_kept_on_request(self):
        edges = list(snap.iter_edge_list(["3\t3"], skip_self_loops=False))
        assert edges == [(3, 3)]

    def test_duplicates_stream_through(self):
        # the parser never filters duplicates — the graph collapses them
        assert list(snap.iter_edge_list(["0\t1", "0\t1"])) == [(0, 1), (0, 1)]

    @pytest.mark.parametrize("bad", ["0", "0 1 2", "a b", "1 x", "1.5 2"])
    def test_malformed_line_names_the_line_number(self, bad):
        with pytest.raises(GraphError, match="line 2"):
            list(snap.iter_edge_list(["0\t1", bad]))

    def test_load_collapses_duplicates_in_the_graph(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0\t1\n0\t1\n1\t1\n1\t2\n", encoding="utf-8")
        stats = snap.EdgeListStats()
        graph = snap.load_edge_file(path, stats=stats)
        assert graph.num_edges == 2
        assert stats.parsed_edges == 4
        assert stats.self_loops == 1
        assert stats.duplicates == 1
        assert "1 duplicates" in stats.note()

    def test_undirected_load_inserts_both_directions(self, tmp_path):
        path = tmp_path / "undirected.txt"
        path.write_text("0\t1\n1\t2\n", encoding="utf-8")
        graph = snap.load_edge_file(path, directed=False)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph.num_edges == 4

    def test_max_edges_prefix(self, tmp_path):
        path = tmp_path / "prefix.txt"
        path.write_text("0\t1\n1\t2\n2\t3\n3\t4\n", encoding="utf-8")
        stats = snap.EdgeListStats()
        graph = snap.load_edge_file(path, max_edges=2, stats=stats)
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]
        # the prefix generator never pulls a record past the limit
        assert stats.parsed_edges == 2

    def test_gzip_sniffed_from_magic_bytes_not_extension(self, tmp_path):
        path = tmp_path / "misnamed.txt"  # gzip bytes behind a .txt name
        path.write_bytes(gzip.compress(b"5\t6\n"))
        assert sorted(snap.load_edge_file(path).edges()) == [(5, 6)]

    def test_to_snap_text_rejects_non_int_ids(self):
        graph = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError, match="integer node ids"):
            snap.to_snap_text(graph)


#: Directed simple graphs in the SNAP format's image: integer ids, no self
#: loops, no isolated nodes (the format stores only edges).
_snap_graphs = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=60,
).map(DiGraph.from_edges)


class TestRoundTrip:
    @given(graph=_snap_graphs)
    def test_parse_serialize_is_identity(self, graph):
        text = snap.to_snap_text(graph)
        parsed = DiGraph()
        parsed.add_edges_from(snap.iter_edge_list(text.splitlines()))
        assert parsed == graph

    @given(graph=_snap_graphs)
    def test_counts_survive_the_round_trip(self, graph):
        stats = snap.EdgeListStats()
        edges = list(
            snap.iter_edge_list(snap.to_snap_text(graph).splitlines(), stats=stats)
        )
        assert stats.parsed_edges == graph.num_edges == len(edges)
        assert stats.comments == 3  # the serializer's header
        assert stats.self_loops == 0

    @given(graph=_snap_graphs)
    def test_file_round_trip_plain_and_gzip(self, graph):
        text = snap.to_snap_text(graph)
        import io
        import os
        import tempfile

        for payload in (text.encode(), gzip.compress(text.encode())):
            fd, name = tempfile.mkstemp()
            try:
                with io.open(fd, "wb") as fh:
                    fh.write(payload)
                assert snap.load_edge_file(name) == graph
            finally:
                os.unlink(name)


# ---------------------------------------------------------------------------
# committed fixtures
# ---------------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize("name", sorted(snap.FIXTURES))
    def test_checksum_pins_hold(self, name):
        spec = snap.FIXTURES[name]
        snap.verify_file(spec.path(DATA_DIR), spec.sha256)

    def test_plain_fixture_shape(self):
        stats = snap.EdgeListStats()
        graph = snap.load_fixture("fixture-plain", DATA_DIR, stats=stats)
        assert (graph.num_nodes, graph.num_edges) == (27, 64)
        assert stats.comments > 0 and stats.self_loops > 0 and stats.duplicates > 0

    def test_gzip_fixture_shape(self):
        graph = snap.load_fixture("fixture-gzip", DATA_DIR)
        assert (graph.num_nodes, graph.num_edges) == (36, 88)

    def test_fixture_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv(snap.FIXTURE_DIR_ENV, str(tmp_path))
        assert snap.fixture_dir() == tmp_path
        assert snap.fixture_dir(DATA_DIR) == DATA_DIR  # explicit arg wins

    def test_unknown_fixture(self):
        with pytest.raises(QueryError, match="unknown SNAP fixture"):
            snap.load_fixture("nope")

    def test_missing_fixture_file_names_the_env_var(self, tmp_path):
        with pytest.raises(QueryError, match=snap.FIXTURE_DIR_ENV):
            snap.load_fixture("fixture-plain", tmp_path / "empty")


# ---------------------------------------------------------------------------
# cache + download (file:// URLs — no network)
# ---------------------------------------------------------------------------
@pytest.fixture
def file_spec(tmp_path, monkeypatch):
    """A registered spec whose URL is a local file:// copy of the fixture."""
    cache = tmp_path / "cache"
    monkeypatch.setenv(snap.DATA_DIR_ENV, str(cache))
    source = tmp_path / "wiki-Vote.txt.gz"
    source.write_bytes(
        gzip.compress((DATA_DIR / "snap_fixture_plain.txt").read_bytes())
    )
    spec = snap.SnapSpec(
        "wiki-Vote", source.as_uri(), 27, 64, True, "file:// test double"
    )
    monkeypatch.setitem(snap.SNAP_SPECS, "wiki-Vote", spec)
    return spec


class TestDownload:
    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(snap.DATA_DIR_ENV, str(tmp_path))
        assert snap.snap_cache_dir() == tmp_path
        monkeypatch.delenv(snap.DATA_DIR_ENV)
        assert snap.snap_cache_dir() == snap.DEFAULT_DATA_DIR.expanduser()

    def test_missing_dataset_error_names_command_and_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(snap.DATA_DIR_ENV, str(tmp_path))
        with pytest.raises(QueryError) as err:
            snap.load_snap("wiki-Vote")
        message = str(err.value)
        assert "python -m repro.workload.snap download wiki-Vote" in message
        assert str(tmp_path) in message

    def test_unknown_dataset(self):
        with pytest.raises(QueryError, match="unknown SNAP dataset"):
            snap.get_spec("not-a-graph")

    def test_download_records_tofu_sidecar(self, file_spec):
        path = snap.download("wiki-Vote")
        assert path.exists() and not path.with_name(path.name + ".part").exists()
        sidecar = path.with_name(path.name + ".sha256")
        assert sidecar.read_text().split()[0] == snap.expected_sha256(file_spec)
        # second call is a cache hit; force re-verifies against the sidecar
        assert snap.download("wiki-Vote") == path
        assert snap.download("wiki-Vote", force=True) == path

    def test_download_rejects_checksum_mismatch(self, file_spec, monkeypatch):
        bad = snap.SnapSpec(
            file_spec.name, file_spec.url, 27, 64, True, "pinned wrong",
            sha256="0" * 64,
        )
        monkeypatch.setitem(snap.SNAP_SPECS, "wiki-Vote", bad)
        with pytest.raises(QueryError, match="checksum mismatch"):
            snap.download("wiki-Vote")
        assert not snap.dataset_path("wiki-Vote").exists()  # atomic: no debris

    def test_download_failure_is_a_query_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv(snap.DATA_DIR_ENV, str(tmp_path))
        spec = snap.SnapSpec(
            "wiki-Vote", (tmp_path / "absent.gz").as_uri(), 1, 1, True, "gone"
        )
        monkeypatch.setitem(snap.SNAP_SPECS, "wiki-Vote", spec)
        with pytest.raises(QueryError, match="download .* failed"):
            snap.download("wiki-Vote")

    def test_verify_file_mismatch(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("0\t1\n")
        with pytest.raises(QueryError, match="checksum mismatch"):
            snap.verify_file(path, "0" * 64)

    def test_load_snap_serves_the_cached_file(self, file_spec):
        snap.download("wiki-Vote")
        graph = snap.load_snap("wiki-Vote")
        assert (graph.num_nodes, graph.num_edges) == (27, 64)

    def test_load_dataset_dispatches_to_snap(self, file_spec):
        from repro.workload import load_dataset

        snap.download("wiki-Vote")
        assert load_dataset("wiki-Vote") == snap.load_snap("wiki-Vote")


class TestModuleCli:
    def test_list(self, file_spec, capsys):
        assert snap.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "wiki-Vote" in out and "not downloaded" in out

    def test_download_verify_cycle(self, file_spec, capsys):
        assert snap.main(["download", "wiki-Vote"]) == 0
        assert snap.main(["verify", "wiki-Vote"]) == 0
        assert "ok (sha256" in capsys.readouterr().out

    def test_verify_without_cache_exits_2(self, file_spec, capsys):
        assert snap.main(["verify", "wiki-Vote"]) == 2
        assert "download wiki-Vote" in capsys.readouterr().err

    def test_verify_without_any_checksum_exits_1(self, file_spec, capsys):
        snap.download("wiki-Vote")
        sidecar = snap.dataset_path("wiki-Vote").with_name(
            snap.SNAP_SPECS["wiki-Vote"].filename + ".sha256"
        )
        sidecar.unlink()
        assert snap.main(["verify", "wiki-Vote"]) == 1
        assert "no recorded checksum" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# bulk graph construction
# ---------------------------------------------------------------------------
class TestAddEdgesFrom:
    def test_creates_endpoints_and_counts_insertions(self):
        graph = DiGraph()
        added = graph.add_edges_from([(0, 1), (1, 2), (0, 1)])
        assert added == 2
        assert graph.num_edges == 2 and graph.num_nodes == 3
        assert graph.label(0) is None

    def test_matches_add_edge_semantics(self):
        pairs = [(0, 1), (1, 2), (2, 0), (0, 1), (2, 3)]
        bulk = DiGraph()
        bulk.add_edges_from(pairs)
        assert bulk == DiGraph.from_edges(pairs)

    def test_bumps_mutation_stamp_once_per_batch(self):
        graph = DiGraph.from_edges([(0, 1)])
        before = graph.mutation_stamp
        graph.add_edges_from([(1, 2), (2, 3)])
        assert graph.mutation_stamp == before + 1

    def test_preserves_existing_labels(self):
        graph = DiGraph()
        graph.add_node(0, label="keep")
        graph.add_edges_from([(0, 1)])
        assert graph.label(0) == "keep"


# ---------------------------------------------------------------------------
# edge-arrival replay
# ---------------------------------------------------------------------------
def _fixture_stream():
    """Arrival-order records of the plain fixture (duplicates included)."""
    with snap.open_edge_file(DATA_DIR / "snap_fixture_plain.txt") as fh:
        return list(snap.iter_edge_list(fh))


FIXTURE_STREAM = _fixture_stream()
FIXTURE_GRAPH = snap.load_fixture("fixture-plain", DATA_DIR)


def _signature(cluster, queries):
    evaluations = [evaluate(cluster, q, "disReach") for q in queries]
    return (
        [r.answer for r in evaluations],
        sum(r.stats.total_visits for r in evaluations),
        sum(r.stats.traffic_bytes for r in evaluations),
    )


class TestReplay:
    def test_nodes_only_cluster_is_edge_free_with_full_assignment(self):
        cluster, assignment = snap.nodes_only_cluster(FIXTURE_GRAPH, 3)
        assert cluster.fragmentation.restore_graph().num_edges == 0
        assert set(assignment) == set(FIXTURE_GRAPH.nodes())
        expected, _ = _resolve_assignment(FIXTURE_GRAPH, 3, "chunk", 0)
        assert assignment == expected

    def test_replay_counts_duplicates_and_is_idempotent(self):
        cluster, _ = snap.nodes_only_cluster(FIXTURE_GRAPH, 3)
        report = snap.replay_edges(cluster, FIXTURE_STREAM)
        assert report.applied == FIXTURE_GRAPH.num_edges
        assert report.duplicates == len(FIXTURE_STREAM) - report.applied
        again = snap.replay_edges(cluster, FIXTURE_STREAM)
        assert again.applied == 0
        assert again.duplicates == len(FIXTURE_STREAM)

    def test_vf_trace_sampling(self):
        cluster, _ = snap.nodes_only_cluster(FIXTURE_GRAPH, 3)
        report = snap.replay_edges(cluster, FIXTURE_STREAM, sample=16)
        assert [index for index, _vf in report.vf_trace] == [16, 32, 48, 64]
        assert all(vf >= 0 for _i, vf in report.vf_trace)

    @settings(max_examples=25)
    @given(
        prefix=st.integers(0, len(FIXTURE_STREAM)),
        backend=st.sampled_from(["sequential", "thread"]),
        partitioner=st.sampled_from(["chunk", "hash", "refined"]),
    )
    def test_any_prefix_replay_matches_static_load(self, prefix, backend, partitioner):
        """Replaying a stream prefix == statically loading that prefix.

        Bit-identical answers, visit counts and modeled traffic, for every
        prefix length, executor backend and partitioner — the replay path
        (apply_edge_mutation per record) is just a slower way to build the
        same cluster.
        """
        replayed, assignment = snap.nodes_only_cluster(
            FIXTURE_GRAPH, 3, partitioner=partitioner, executor=backend
        )
        snap.replay_edges(replayed, FIXTURE_STREAM[:prefix])
        static_graph = DiGraph()
        for node in FIXTURE_GRAPH.nodes():
            static_graph.add_node(node)
        static_graph.add_edges_from(FIXTURE_STREAM[:prefix])
        static = SimulatedCluster(
            build_fragmentation(static_graph, assignment, 3), executor=backend
        )
        assert (
            replayed.fragmentation.restore_graph() == static_graph
        )
        nodes = sorted(FIXTURE_GRAPH.nodes())
        queries = [
            ReachQuery(nodes[0], nodes[-1]),
            ReachQuery(nodes[1], nodes[len(nodes) // 2]),
        ]
        assert _signature(replayed, queries) == _signature(static, queries)

    def test_replay_with_process_backend_matches_sequential(self):
        signatures = []
        for backend in ("sequential", "process"):
            cluster, _ = snap.nodes_only_cluster(
                FIXTURE_GRAPH, 3, executor=backend
            )
            snap.replay_edges(cluster, FIXTURE_STREAM)
            nodes = sorted(FIXTURE_GRAPH.nodes())
            signatures.append(
                _signature(cluster, [ReachQuery(nodes[0], nodes[-1])])
            )
        assert signatures[0] == signatures[1]

    def test_monitor_fires_during_replay(self):
        cluster, _ = snap.nodes_only_cluster(
            FIXTURE_GRAPH, 3, partitioner="hash"
        )
        monitor = MutationMonitor(
            cluster, drift_threshold=0.1, move_budget=16, region_hops=1
        )
        report = snap.replay_edges(cluster, FIXTURE_STREAM)
        assert report.epochs == len(monitor.refinements) > 0
        assert all(
            r.moved_nodes <= 16 for r in monitor.refinements
        )

    def test_iter_dataset_edges_fixture(self):
        stream = list(snap.iter_dataset_edges("fixture-plain"))
        assert stream == FIXTURE_STREAM


# ---------------------------------------------------------------------------
# the bench experiment (fixture mode — what CI gates)
# ---------------------------------------------------------------------------
class TestExpSnap:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.bench.experiments import exp_snap

        return exp_snap(fixture=True, num_queries=2).rows

    def test_row_families_present(self, rows):
        modes = {row["mode"] for row in rows}
        assert modes == {"load", "static", "replay", "replay-monitor"}

    def test_envelope_holds_on_every_static_cell(self, rows):
        static = [row for row in rows if row["mode"] == "static"]
        assert static and all(row["env_ok"] == 1 for row in static)

    def test_replay_rows_match_static_loads(self, rows):
        replays = [row for row in rows if row["mode"] == "replay"]
        assert replays and all(row["replay_match"] == 1 for row in replays)

    def test_refined_beats_hash_on_vf(self, rows):
        for dataset in ("fixture-plain", "fixture-gzip"):
            vf = {
                row["partitioner"]: row["Vf"]
                for row in rows
                if row["mode"] == "static"
                and row["dataset"] == dataset
                and row["algorithm"] == "disReach"
                and row["backend"] == "sequential"
            }
            assert vf["refined"] <= vf["hash"]

    def test_cli_forwards_fixture_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "snap.json"
        assert main(["snap", "--fixture", "--queries", "2", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert {row["mode"] for row in payload["snap"]["rows"]} >= {"load", "static"}

    def test_missing_datasets_skip_with_reason(self, monkeypatch, tmp_path):
        from repro.bench.experiments import exp_snap

        monkeypatch.setenv(snap.DATA_DIR_ENV, str(tmp_path))  # empty cache
        rows = exp_snap(num_queries=2).rows
        skips = [row for row in rows if row["mode"] == "skip"]
        # soc-LiveJournal1 trips the RSS estimate guard; the rest miss the cache
        assert len(skips) == len(snap.SNAP_SPECS)
        reasons = " ".join(str(row["status"]) for row in skips)
        assert "not in cache" in reasons and "estimated RSS" in reasons

    def test_exhausted_wall_budget_skips_loudly(self, monkeypatch):
        """A zero budget cuts the sweep right after the load row — loudly."""
        from repro.bench.experiments import exp_snap

        rows = exp_snap(fixture=True, num_queries=2, wall_budget_s=0.0).rows
        by_mode = {}
        for row in rows:
            by_mode.setdefault(row["mode"], []).append(row)
        assert set(by_mode) == {"load", "skip"}
        for row in by_mode["skip"]:
            assert "wall budget 0s exceeded" in row["status"]

    def test_mid_run_wall_budget_skips_every_phase_loudly(self, monkeypatch):
        """Budget expiry between phases emits a skip row per cut phase.

        A fake clock advancing one second per ``perf_counter`` call makes the
        cut deterministic: 60 fake seconds is enough for the primary static
        cells but expires before the replay loop, so the replay, the
        replay-monitor and the wide-cell passes must each leave their own
        skip row (never a silent omission).
        """
        import time as time_mod

        from repro.bench.experiments import exp_snap

        ticks = itertools.count(1)
        monkeypatch.setattr(
            time_mod, "perf_counter", lambda: float(next(ticks))
        )
        rows = exp_snap(fixture=True, num_queries=2, wall_budget_s=60.0).rows
        statics = [row for row in rows if row["mode"] == "static"]
        assert statics, "primary cells should have run before the cut"
        reasons = [row["status"] for row in rows if row["mode"] == "skip"]
        assert any("skipped replay:" in r for r in reasons)
        assert any("skipped replay-monitor:" in r for r in reasons)
        assert any("skipped remaining cells" in r for r in reasons)


# ---------------------------------------------------------------------------
# the real thing (network marker — deselected by default)
# ---------------------------------------------------------------------------
@pytest.mark.network
class TestRealDownload:
    def test_wiki_vote_download_and_envelope(self, tmp_path, monkeypatch):
        monkeypatch.setenv(snap.DATA_DIR_ENV, str(tmp_path))
        snap.download("wiki-Vote")
        stats = snap.EdgeListStats()
        graph = snap.load_snap("wiki-Vote", stats=stats)
        spec = snap.get_spec("wiki-Vote")
        assert graph.num_nodes == spec.nodes
        assert graph.num_edges <= spec.edges  # duplicates collapse
        assert stats.parsed_edges == spec.edges
