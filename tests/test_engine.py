"""Unit tests for the algorithm registry / front end."""

import pytest

from repro.core import (
    BoundedReachQuery,
    REGISTRY,
    ReachQuery,
    RegularReachQuery,
    algorithms_for,
    evaluate,
)
from repro.errors import QueryError


class TestRegistry:
    def test_paper_names_present(self):
        assert set(REGISTRY) == {
            "disReach", "disReachn", "disReachm",
            "disDist", "disDistn", "disDistm",
            "disRPQ", "disRPQn", "disRPQd",
        }

    def test_algorithms_for(self):
        assert set(algorithms_for(ReachQuery("a", "b"))) == {
            "disReach", "disReachn", "disReachm"
        }
        assert set(algorithms_for(BoundedReachQuery("a", "b", 1))) == {
            "disDist", "disDistn", "disDistm"
        }
        assert set(algorithms_for(RegularReachQuery("a", "b", "x"))) == {
            "disRPQ", "disRPQn", "disRPQd"
        }


class TestEvaluate:
    def test_default_dispatch(self, figure1):
        _, _, cluster = figure1
        assert evaluate(cluster, ReachQuery("Ann", "Mark")).answer
        assert evaluate(cluster, BoundedReachQuery("Ann", "Mark", 6)).answer
        assert evaluate(cluster, RegularReachQuery("Ann", "Mark", "HR*")).answer

    def test_default_uses_partial_evaluation(self, figure1):
        _, _, cluster = figure1
        result = evaluate(cluster, ReachQuery("Ann", "Mark"))
        assert result.stats.algorithm == "disReach"

    def test_explicit_algorithm(self, figure1):
        _, _, cluster = figure1
        result = evaluate(cluster, ReachQuery("Ann", "Mark"), "disReachn")
        assert result.answer
        assert result.stats.algorithm == "disReachn"

    def test_every_registered_algorithm_runs(self, figure1):
        _, _, cluster = figure1
        queries = {
            ReachQuery: ReachQuery("Ann", "Mark"),
            BoundedReachQuery: BoundedReachQuery("Ann", "Mark", 6),
            RegularReachQuery: RegularReachQuery("Ann", "Mark", "HR*"),
        }
        for name, (query_type, _) in REGISTRY.items():
            result = evaluate(cluster, queries[query_type], name)
            assert result.answer, name

    def test_unknown_algorithm(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError, match="unknown algorithm"):
            evaluate(cluster, ReachQuery("Ann", "Mark"), "disMagic")

    def test_query_type_mismatch(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError, match="evaluates"):
            evaluate(cluster, ReachQuery("Ann", "Mark"), "disRPQ")

    def test_unsupported_query_object(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            evaluate(cluster, "not a query")
