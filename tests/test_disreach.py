"""Unit tests for disReach (Section 3)."""

import pytest

from repro.core import ReachQuery, dis_reach, local_eval_reach, reachable
from repro.core.bes import TRUE
from repro.core.reachability import ReachPartialAnswer, assemble_reach
from repro.distributed import MessageKind, SimulatedCluster, payload_size
from repro.errors import QueryError
from repro.index import TransitiveClosureOracle


class TestLocalEval:
    def test_figure1_equations(self, figure1):
        """Example 3's equation table, verbatim."""
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        f1, f2, f3 = fragmentation.fragments
        assert local_eval_reach(f1, query) == {
            "Ann": frozenset({"Pat", "Mat"}),
            "Fred": frozenset({"Emmy"}),
        }
        assert local_eval_reach(f2, query) == {
            "Mat": frozenset({"Fred"}),
            "Jack": frozenset({"Fred"}),
            "Emmy": frozenset({"Fred", "Ross"}),
        }
        assert local_eval_reach(f3, query) == {
            "Ross": frozenset({TRUE}),
            "Pat": frozenset({"Jack"}),
        }

    def test_source_gets_equation_in_home_fragment(self, figure1):
        _, fragmentation, _ = figure1
        equations = local_eval_reach(fragmentation[0], ReachQuery("Walt", "Mark"))
        assert "Walt" in equations

    def test_local_target_becomes_true(self, figure1):
        _, fragmentation, _ = figure1
        # target Emmy lives in F2; F1's Fred reaches the virtual Emmy directly
        equations = local_eval_reach(fragmentation[0], ReachQuery("Ann", "Emmy"))
        assert equations["Fred"] == frozenset({TRUE})

    def test_target_in_node_reaches_itself(self, figure1):
        _, fragmentation, _ = figure1
        # Fred is an in-node of F1 and the target: X_Fred must be true.
        equations = local_eval_reach(fragmentation[0], ReachQuery("Ann", "Fred"))
        assert TRUE in equations["Fred"]

    def test_empty_iset(self):
        from repro.graph import DiGraph
        from repro.partition import build_fragmentation

        g = DiGraph.from_edges([("a", "b")])
        frag = build_fragmentation(g, {"a": 0, "b": 0}, 2)
        assert local_eval_reach(frag[1], ReachQuery("a", "b")) == {}

    def test_no_boundary_no_disjuncts(self):
        from repro.graph import DiGraph
        from repro.partition import build_fragmentation

        g = DiGraph.from_edges([("a", "b")])
        frag = build_fragmentation(g, {"a": 0, "b": 0}, 1)
        # source in fragment, target elsewhere? target also here -> oset={b}
        eqs = local_eval_reach(frag[0], ReachQuery("a", "b"))
        assert eqs["a"] == frozenset({TRUE})

    def test_oracle_factory_gives_same_equations(self, figure1):
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        for frag in fragmentation:
            default = local_eval_reach(frag, query)
            indexed = local_eval_reach(frag, query, TransitiveClosureOracle)
            assert default == indexed


class TestAssemble:
    def test_assemble_true(self, figure1):
        _, fragmentation, _ = figure1
        query = ReachQuery("Ann", "Mark")
        partials = {
            frag.fid: local_eval_reach(frag, query) for frag in fragmentation
        }
        answer, bes = assemble_reach(partials, query)
        assert answer
        assert len(bes) == 7

    def test_assemble_false(self, figure1):
        _, fragmentation, _ = figure1
        query = ReachQuery("Mark", "Ann")
        partials = {
            frag.fid: local_eval_reach(frag, query) for frag in fragmentation
        }
        answer, _ = assemble_reach(partials, query)
        assert not answer


class TestDisReach:
    def test_figure1_answer(self, figure1):
        _, _, cluster = figure1
        assert dis_reach(cluster, ("Ann", "Mark")).answer is True
        assert dis_reach(cluster, ("Mark", "Ann")).answer is False

    def test_accepts_query_object(self, figure1):
        _, _, cluster = figure1
        assert dis_reach(cluster, ReachQuery("Ann", "Mark")).answer

    def test_source_equals_target(self, figure1):
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Tom", "Tom"))
        assert result.answer
        assert result.details.get("trivial")
        assert result.stats.total_visits == 0

    def test_unknown_endpoint_raises(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_reach(cluster, ("Ann", "Nobody"))

    def test_each_site_visited_exactly_once(self, figure1):
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Ann", "Mark"))
        assert result.stats.visits_per_site() == {0: 1, 1: 1, 2: 1}

    def test_message_pattern(self, figure1):
        """Example 1's promise: besides the query, only partial-answer
        messages to the coordinator."""
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Ann", "Mark"))
        kinds = [m.kind for m in result.stats.messages]
        assert kinds.count(MessageKind.QUERY) == 3
        assert kinds.count(MessageKind.PARTIAL) == 3
        assert len(kinds) == 6

    def test_details(self, figure1):
        _, _, cluster = figure1
        result = dis_reach(cluster, ("Ann", "Mark"), collect_details=True)
        assert result.details["num_variables"] == 7
        assert 1 in result.details["equations"]

    def test_agrees_with_centralized(self, random_case):
        for seed in range(5):
            graph, cluster = random_case(seed)
            nodes = sorted(graph.nodes())
            for s in nodes[::7]:
                for t in nodes[::5]:
                    expected = reachable(graph, s, t)
                    assert dis_reach(cluster, (s, t)).answer == expected

    def test_single_fragment_cluster(self, diamond):
        cluster = SimulatedCluster.from_graph(diamond, 1)
        assert dis_reach(cluster, ("a", "d")).answer
        assert not dis_reach(cluster, ("d", "a")).answer


class TestPartialAnswerPayload:
    def test_size_scales_with_equations(self):
        small = ReachPartialAnswer({"a": frozenset({"x"})})
        big = ReachPartialAnswer(
            {"a": frozenset({"x"}), "b": frozenset({"x", "y"})}
        )
        assert payload_size(small) < payload_size(big)

    def test_dense_rows_capped_by_bitset(self):
        cols = frozenset(range(800))
        dense = ReachPartialAnswer({"a": cols})
        # header 2 + row id 1 + column table 800*8 + bitset row ceil(800/8)
        assert payload_size(dense) == 2 + 1 + 800 * 8 + 100
