"""Unit tests for partition-quality measurement (DESIGN.md §7).

The worked example is the paper's Figure 1 fragmentation (DC1/DC2/DC3):
every count below is derivable by hand from ``workload/paper_example.py``'s
edge list, so a failure pinpoints exactly which statistic drifted.
"""

import pytest

from repro.errors import FragmentationError
from repro.graph import erdos_renyi
from repro.partition import (
    PartitionQuality,
    RepartitionReport,
    build_fragmentation,
    hash_partition,
    measure_quality,
)
from repro.partition.quality import BOUNDED_ALGORITHMS
from repro.workload.paper_example import figure1_fragmentation


@pytest.fixture(scope="module")
def figure1_quality() -> PartitionQuality:
    return measure_quality(figure1_fragmentation())


class TestFigure1WorkedExample:
    """Hand-derived statistics of the paper's running example."""

    def test_global_counts(self, figure1_quality):
        q = figure1_quality
        assert q.num_fragments == 3
        assert q.num_nodes == 13  # 11 named people + 2 DC2 relays
        assert q.num_edges == 14
        # Cross edges: Walt->Mat, Bill->Pat, Fred->Emmy (F1);
        # Mat->Fred, relay2->Fred, Emmy->Ross (F2); Pat->Jack (F3).
        assert q.num_cross_edges == 7
        assert q.cut_fraction == pytest.approx(7 / 14)

    def test_boundary_nodes(self, figure1_quality):
        # Vf = all cross-edge endpoints: sources {Walt, Bill, Fred, Mat,
        # relay2, Emmy, Pat} ∪ targets {Mat, Pat, Emmy, Fred, Ross, Jack}.
        assert figure1_quality.num_boundary_nodes == 9

    def test_per_fragment_in_out(self, figure1_quality):
        by_fid = {fq.fid: fq for fq in figure1_quality.fragments}
        # F1 (DC1): owns {Ann, Walt, Bill, Fred}; F1.O = {Mat, Pat, Emmy},
        # F1.I = {Fred}; boundary = {Mat, Pat, Emmy, Fred}.
        assert by_fid[0].num_nodes == 4
        assert by_fid[0].num_out_nodes == 3
        assert by_fid[0].num_in_nodes == 1
        assert by_fid[0].num_boundary == 4
        assert by_fid[0].num_cross_edges == 3
        # F2 (DC2): owns {Mat, Jack, Emmy, relay1, relay2}; F2.O =
        # {Fred, Ross}, F2.I = {Mat, Emmy, Jack}.
        assert by_fid[1].num_nodes == 5
        assert by_fid[1].num_out_nodes == 2
        assert by_fid[1].num_in_nodes == 3
        assert by_fid[1].num_boundary == 5
        assert by_fid[1].num_cross_edges == 3
        # F3 (DC3): owns {Pat, Ross, Tom, Mark}; F3.O = {Jack},
        # F3.I = {Pat, Ross}.
        assert by_fid[2].num_nodes == 4
        assert by_fid[2].num_out_nodes == 1
        assert by_fid[2].num_in_nodes == 2
        assert by_fid[2].num_boundary == 3
        assert by_fid[2].num_cross_edges == 1

    def test_total_in_out(self, figure1_quality):
        assert figure1_quality.total_in_out == 4 + 5 + 3

    def test_balance_and_sizes(self, figure1_quality):
        q = figure1_quality
        assert q.max_fragment_nodes == 5  # DC2
        assert q.balance == pytest.approx(5 / (13 / 3))
        # |F2| = (5 owned + 2 virtual) nodes + (3 internal + 3 cross) edges.
        assert q.max_fragment_size == 13

    def test_traffic_bounds(self, figure1_quality):
        q = figure1_quality
        assert q.traffic_bound("disReach") == 81  # |Vf|^2
        assert q.traffic_bound("disDist") == 81
        assert q.traffic_bound("disRPQ", query_states=3) == 9 * 81

    def test_summary_mentions_the_theorem_quantities(self, figure1_quality):
        text = figure1_quality.summary()
        assert "|Vf|=9" in text
        assert "card=3" in text


class TestTrafficBoundErrors:
    def test_unknown_algorithm(self, figure1_quality):
        with pytest.raises(FragmentationError, match="disReachn"):
            figure1_quality.traffic_bound("disReachn")

    def test_bad_query_states(self, figure1_quality):
        with pytest.raises(FragmentationError, match="query_states"):
            figure1_quality.traffic_bound("disRPQ", query_states=0)

    def test_registry_covers_partial_evaluation_algorithms(self):
        assert set(BOUNDED_ALGORITHMS) == {"disReach", "disDist", "disRPQ"}


class TestMeasureQualityEdgeCases:
    def test_single_fragment_has_no_boundary(self):
        g = erdos_renyi(20, 50, seed=3)
        quality = measure_quality(build_fragmentation(g, {n: 0 for n in g.nodes()}, 1))
        assert quality.num_boundary_nodes == 0
        assert quality.num_cross_edges == 0
        assert quality.total_in_out == 0
        assert quality.cut_fraction == 0.0
        assert quality.traffic_bound() == 0

    def test_matches_fragmentation_accessors(self):
        g = erdos_renyi(40, 120, seed=7)
        frag = build_fragmentation(g, hash_partition(g, 4), 4)
        quality = measure_quality(frag)
        assert quality.num_boundary_nodes == frag.num_boundary_nodes
        assert quality.num_cross_edges == frag.num_cross_edges
        assert quality.max_fragment_size == frag.max_fragment_size
        assert quality.num_nodes == g.num_nodes
        assert quality.num_edges == g.num_edges


class TestRepartitionReport:
    def test_deltas_and_ratio(self):
        g = erdos_renyi(40, 120, seed=7)
        before = measure_quality(build_fragmentation(g, hash_partition(g, 4), 4))
        after = measure_quality(build_fragmentation(g, {n: 0 for n in g.nodes()}, 1))
        report = RepartitionReport(partitioner="test", before=before, after=after)
        assert report.boundary_delta == -before.num_boundary_nodes
        assert report.traffic_bound_ratio == 0.0
        assert "before:" in report.summary() and "(test)" in report.summary()

    def test_ratio_from_zero_boundary(self):
        g = erdos_renyi(10, 20, seed=1)
        whole = measure_quality(build_fragmentation(g, {n: 0 for n in g.nodes()}, 1))
        split = measure_quality(build_fragmentation(g, hash_partition(g, 3), 3))
        assert RepartitionReport("t", whole, whole).traffic_bound_ratio == 1.0
        assert RepartitionReport("t", whole, split).traffic_bound_ratio == float("inf")
