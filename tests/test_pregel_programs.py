"""Tests for the Pregel vertex programs and the disDistm extension."""

import random


from repro.baselines import dis_dist_m, pregel_bfs_levels, pregel_sssp
from repro.core import bounded_reachable, dis_dist, distance
from repro.distributed import SimulatedCluster
from repro.graph import bfs_distances, erdos_renyi
from repro.partition import build_fragmentation


def _cluster(seed=1, n=35, k=3):
    g = erdos_renyi(n, 3 * n, seed=seed)
    assignment = {node: node % k for node in g.nodes()}
    return g, SimulatedCluster(build_fragmentation(g, assignment, k))


class TestBfsLevels:
    def test_matches_centralized_bfs(self):
        g, cluster = _cluster(seed=2)
        levels, stats = pregel_bfs_levels(cluster, 0)
        assert levels == bfs_distances(g, 0)

    def test_max_level_caps_exploration(self):
        g, cluster = _cluster(seed=3)
        levels, _ = pregel_bfs_levels(cluster, 0, max_level=2)
        full = bfs_distances(g, 0, cutoff=2)
        assert levels == full

    def test_figure1(self, figure1):
        graph, _, cluster = figure1
        levels, stats = pregel_bfs_levels(cluster, "Ann")
        assert levels["Mark"] == 6
        assert levels["Ann"] == 0


class TestSssp:
    def test_unit_weights_equal_bfs(self):
        g, cluster = _cluster(seed=4)
        dists, _ = pregel_sssp(cluster, 0)
        assert dists == {n: float(d) for n, d in bfs_distances(g, 0).items()}

    def test_custom_weights(self, figure1):
        graph, _, cluster = figure1
        dists, _ = pregel_sssp(cluster, "Ann", weight_fn=lambda u, v: 2.0)
        assert dists["Mark"] == 12.0


class TestDisDistM:
    def test_figure1_example5(self, figure1):
        _, _, cluster = figure1
        result = dis_dist_m(cluster, ("Ann", "Mark", 6))
        assert result.answer
        assert result.details["distance"] == 6.0
        assert not dis_dist_m(cluster, ("Ann", "Mark", 5)).answer

    def test_trivial_and_unreachable(self, figure1):
        _, _, cluster = figure1
        assert dis_dist_m(cluster, ("Tom", "Tom", 0)).answer
        assert not dis_dist_m(cluster, ("Mark", "Ann", 99)).answer

    def test_agrees_with_disdist(self):
        g, cluster = _cluster(seed=5)
        rng = random.Random(0)
        nodes = sorted(g.nodes())
        for _ in range(12):
            s, t = rng.choice(nodes), rng.choice(nodes)
            bound = rng.randrange(0, 7)
            expected = bounded_reachable(g, s, t, bound)
            assert dis_dist_m(cluster, (s, t, bound)).answer == expected
            assert dis_dist(cluster, (s, t, bound)).answer == expected

    def test_unbounded_visits_like_disreachm(self, figure1):
        _, _, cluster = figure1
        result = dis_dist_m(cluster, ("Ann", "Tom", 50))  # unreachable: full BFS
        assert result.stats.total_visits > cluster.num_sites

    def test_registered_in_engine(self, figure1):
        from repro.core import BoundedReachQuery, evaluate

        _, _, cluster = figure1
        result = evaluate(cluster, BoundedReachQuery("Ann", "Mark", 6), "disDistm")
        assert result.answer and result.stats.algorithm == "disDistm"
