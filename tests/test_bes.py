"""Unit tests for the Boolean Equation System solvers (evalDG)."""

import pytest

from repro.core import TRUE, BooleanEquationSystem


@pytest.fixture
def paper_system():
    """The BES of Example 3 / Fig. 5(a)."""
    bes = BooleanEquationSystem()
    bes.add_equation("Ann", {"Pat", "Mat"})
    bes.add_equation("Fred", {"Emmy"})
    bes.add_equation("Mat", {"Fred"})
    bes.add_equation("Jack", {"Fred"})
    bes.add_equation("Emmy", {"Fred", "Ross"})
    bes.add_equation("Ross", {TRUE})
    bes.add_equation("Pat", {"Jack"})
    return bes


class TestConstruction:
    def test_redefinition_unions(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {"a"})
        bes.add_equation("x", {"b"})
        assert bes.disjuncts_of("x") == {"a", "b"}

    def test_update_from_mapping(self):
        bes = BooleanEquationSystem()
        bes.update({"x": {"y"}, "y": {TRUE}})
        assert len(bes) == 2
        assert bes.num_disjuncts == 2

    def test_contains_and_variables(self, paper_system):
        assert "Ann" in paper_system
        assert "nope" not in paper_system
        assert set(paper_system.variables()) == {
            "Ann", "Fred", "Mat", "Jack", "Emmy", "Ross", "Pat"
        }

    def test_true_is_singleton(self):
        from repro.core.bes import _TrueToken

        assert _TrueToken() is TRUE

    def test_true_does_not_collide_with_int_one(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {1})  # variable named 1, NOT true
        assert not bes.solve_reachability("x")


class TestDependencyGraphSolver:
    def test_paper_example4(self, paper_system):
        """Example 4: XAnn reaches Xtrue — the answer is true."""
        assert paper_system.solve_reachability("Ann")

    def test_recursive_definitions(self, paper_system):
        # xFred is defined indirectly in terms of itself (the paper notes
        # this); the cycle must not prevent or fabricate an answer.
        assert paper_system.solve_reachability("Fred")

    def test_no_true_equation_is_false(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {"y"})
        bes.add_equation("y", {"x"})
        assert not bes.solve_reachability("x")

    def test_undefined_variable_is_false(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {"ghost"})
        assert not bes.solve_reachability("x")
        assert not bes.solve_reachability("never-mentioned")

    def test_true_start(self, paper_system):
        assert paper_system.solve_reachability(TRUE)

    def test_empty_disjuncts_false(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", set())
        assert not bes.solve_reachability("x")

    def test_self_loop_is_not_true(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {"x"})
        assert not bes.solve_reachability("x")


class TestSolveAll:
    def test_matches_paper(self, paper_system):
        values = paper_system.solve_all()
        assert values == {
            "Ann": True, "Fred": True, "Mat": True, "Jack": True,
            "Emmy": True, "Ross": True, "Pat": True,
        }

    def test_mixed_values(self):
        bes = BooleanEquationSystem()
        bes.add_equation("t", {TRUE})
        bes.add_equation("a", {"t"})
        bes.add_equation("dead", {"deader"})
        bes.add_equation("deader", set())
        values = bes.solve_all()
        assert values["a"] and values["t"]
        assert not values["dead"] and not values["deader"]


class TestFixpointOracle:
    def test_agrees_with_solve_all(self, paper_system):
        assert paper_system.solve_fixpoint() == paper_system.solve_all()

    def test_agrees_on_cycles(self):
        bes = BooleanEquationSystem()
        bes.add_equation("a", {"b"})
        bes.add_equation("b", {"a", "c"})
        bes.add_equation("c", set())
        assert bes.solve_fixpoint() == bes.solve_all()


class TestDependencyGraph:
    def test_paper_figure5a_shape(self, paper_system):
        gd = paper_system.dependency_graph()
        assert gd.has_edge("Ann", "Mat")
        assert gd.has_edge("Ross", TRUE)
        assert gd.has_node(TRUE)

    def test_edges_to_undefined_vars_exist(self):
        bes = BooleanEquationSystem()
        bes.add_equation("x", {"ghost"})
        gd = bes.dependency_graph()
        assert gd.has_edge("x", "ghost")
