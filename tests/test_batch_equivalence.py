"""Batch answers are bit-identical to sequential one-by-one evaluation.

The serving engine's contract (DESIGN.md §6): for ANY batch of queries — in
any order, with any amount of cross-query reuse, on any executor backend —
every query's answer and modeled per-query stats (visits, traffic, message
log, supersteps) equal what sequential, uncached, one-by-one evaluation
produces.  Hypothesis drives the shuffling; the executor matrix covers
``sequential``/``thread``/``process``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import evaluate
from repro.distributed import SimulatedCluster
from repro.distributed.executors import EXECUTORS
from repro.graph import erdos_renyi
from repro.partition import build_fragmentation, random_partition
from repro.serving import BatchQueryEngine
from repro.workload.query_gen import zipf_workload

BACKENDS = sorted(EXECUTORS)


def _case(seed: int, num_nodes: int = 24, num_edges: int = 48, k: int = 3):
    graph = erdos_renyi(num_nodes, num_edges, seed=seed, num_labels=3)
    assignment = random_partition(graph, k, seed=seed)
    cluster = SimulatedCluster(build_fragmentation(graph, assignment, k))
    return graph, cluster


def _signature(result):
    """The deterministic, order- and backend-independent part of a run."""
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
        stats.supersteps,
        stats.network_seconds,
    )


class TestShuffledBatchEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 40), data=st.data())
    def test_any_shuffled_batch_matches_one_by_one(self, seed, data):
        graph, cluster = _case(seed)
        queries = zipf_workload(graph, count=10, distinct=5, seed=seed)
        order = data.draw(st.permutations(range(len(queries))))
        shuffled = [queries[i] for i in order]
        reference = {i: _signature(evaluate(cluster, queries[i])) for i in order}
        batch = BatchQueryEngine(cluster).run_batch(shuffled)
        for position, index in enumerate(order):
            assert _signature(batch.results[position]) == reference[index], (
                f"query {queries[index]} diverged at batch position {position}"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_identical_across_executors(self, backend):
        graph, cluster = _case(seed=11)
        queries = zipf_workload(graph, count=16, distinct=6, seed=11)
        reference = [_signature(evaluate(cluster, query)) for query in queries]
        with cluster.using_executor(backend):
            batch = BatchQueryEngine(cluster).run_batch(queries)
        assert [_signature(result) for result in batch.results] == reference
        assert all(result.stats.executor == backend for result in batch.results)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_cache_stays_identical_across_executors(self, backend):
        # Re-serving a workload from a warm cache must not change anything
        # about the per-query stats either.
        graph, cluster = _case(seed=23)
        queries = zipf_workload(graph, count=12, distinct=4, seed=23)
        reference = [_signature(evaluate(cluster, query)) for query in queries]
        engine = BatchQueryEngine(cluster)
        with cluster.using_executor(backend):
            engine.run_batch(queries)
            warm = engine.run_batch(queries)
        assert warm.workload.tasks_executed == 0
        assert [_signature(result) for result in warm.results] == reference
