"""Unit tests for Tarjan SCC and condensation."""

import random


from repro.graph import DiGraph, condensation, erdos_renyi, is_acyclic, tarjan_scc
from repro.graph.traversal import is_reachable


def _scc_sets(graph):
    return {frozenset(c) for c in tarjan_scc(graph.nodes(), graph.successors)}


class TestTarjan:
    def test_dag_gives_singletons(self, diamond):
        assert _scc_sets(diamond) == {
            frozenset({n}) for n in ["a", "b", "c", "d"]
        }

    def test_cycle_is_one_component(self, cycle_graph):
        assert frozenset({0, 1, 2}) in _scc_sets(cycle_graph)

    def test_reverse_topological_order(self, diamond):
        comps = tarjan_scc(diamond.nodes(), diamond.successors)
        index = {}
        for i, comp in enumerate(comps):
            for node in comp:
                index[node] = i
        # every edge goes from a later component to an earlier one
        for u, v in diamond.edges():
            assert index[u] >= index[v]

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        g = DiGraph.from_edges([(i, i + 1) for i in range(n)])
        comps = tarjan_scc(g.nodes(), g.successors)
        assert len(comps) == n + 1

    def test_matches_reachability_definition(self):
        rng = random.Random(3)
        for seed in range(5):
            g = erdos_renyi(25, rng.randrange(10, 80), seed=seed)
            comp_of = {}
            for i, comp in enumerate(tarjan_scc(g.nodes(), g.successors)):
                for node in comp:
                    comp_of[node] = i
            for u in g.nodes():
                for v in g.nodes():
                    same = comp_of[u] == comp_of[v]
                    mutual = is_reachable(g, u, v) and is_reachable(g, v, u)
                    assert same == mutual, (seed, u, v)


class TestCondensation:
    def test_condensation_is_dag(self, cycle_graph):
        dag, membership = condensation(cycle_graph)
        assert is_acyclic(dag)
        assert membership[0] == membership[1] == membership[2]
        assert membership[3] != membership[0]

    def test_members_partition_nodes(self, cycle_graph):
        dag, membership = condensation(cycle_graph)
        members = [n for cid in dag.nodes() for n in dag.label(cid)]
        assert sorted(members, key=repr) == sorted(cycle_graph.nodes(), key=repr)

    def test_edges_projected(self, cycle_graph):
        dag, membership = condensation(cycle_graph)
        assert dag.has_edge(membership[2], membership[3])


class TestIsAcyclic:
    def test_dag(self, diamond):
        assert is_acyclic(diamond)

    def test_cycle(self, cycle_graph):
        assert not is_acyclic(cycle_graph)

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge("a", "a", create=True)
        assert not is_acyclic(g)
