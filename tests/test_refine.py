"""Property tests for the boundary-aware partitioners (DESIGN.md §7).

The refinement invariants the design documents, asserted over
hypothesis-generated graphs:

* ``refined`` / ``multilevel`` always produce assignments whose built
  fragmentation passes ``check_fragmentation``;
* no fragment ever exceeds the ``balance_cap`` owned-node cap;
* refinement never increases the total boundary count ``|Vf|`` over the
  (rebalanced) seed assignment it started from;
* everything is deterministic in (graph, k, seed).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FragmentationError
from repro.graph import DiGraph, erdos_renyi
from repro.partition import (
    balance_cap,
    boundary_count,
    build_fragmentation,
    check_fragmentation,
    measure_quality,
    multilevel_partition,
    refine_assignment,
    refined_partition,
)
from repro.partition.refine import (
    DEFAULT_BALANCE,
    _multilevel_seed,
    rebalance_assignment,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def graph_and_k(draw, max_nodes=24):
    """A random digraph plus a fragment count in [1, |V|+2]."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for u, v in edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    k = draw(st.integers(min_value=1, max_value=n + 2))
    return g, k


@st.composite
def graph_and_assignment(draw, max_nodes=20):
    """A random digraph with an arbitrary (possibly unbalanced) assignment."""
    g, k = draw(graph_and_k(max_nodes))
    assignment = {
        node: draw(st.integers(min_value=0, max_value=k - 1)) for node in g.nodes()
    }
    return g, assignment, k


BOUNDARY_AWARE = {
    "refined": refined_partition,
    "multilevel": multilevel_partition,
}


# ---------------------------------------------------------------------------
# the three documented invariants
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BOUNDARY_AWARE))
class TestInvariants:
    @given(case=graph_and_k(), seed=st.integers(0, 3))
    @settings(max_examples=40)
    def test_valid_fragmentation(self, name, case, seed):
        graph, k = case
        assignment = BOUNDARY_AWARE[name](graph, k, seed=seed)
        assert set(assignment) == set(graph.nodes())
        assert all(0 <= fid < k for fid in assignment.values())
        check_fragmentation(graph, build_fragmentation(graph, assignment, k))

    @given(case=graph_and_k(), seed=st.integers(0, 3))
    @settings(max_examples=40)
    def test_respects_balance_cap(self, name, case, seed):
        graph, k = case
        assignment = BOUNDARY_AWARE[name](graph, k, seed=seed)
        cap = balance_cap(graph.num_nodes, k, DEFAULT_BALANCE)
        sizes = [0] * k
        for fid in assignment.values():
            sizes[fid] += 1
        assert max(sizes) <= cap

    @given(case=graph_and_k(), seed=st.integers(0, 3))
    @settings(max_examples=40)
    def test_deterministic(self, name, case, seed):
        graph, k = case
        fn = BOUNDARY_AWARE[name]
        assert fn(graph, k, seed=seed) == fn(graph, k, seed=seed)


class TestBoundaryNeverIncreases:
    @given(case=graph_and_assignment())
    @settings(max_examples=60)
    def test_refine_assignment_only_improves(self, case):
        graph, assignment, k = case
        refined = refine_assignment(graph, assignment, k)
        assert boundary_count(graph, refined) <= boundary_count(graph, assignment)

    @given(case=graph_and_k(), seed=st.integers(0, 2))
    @settings(max_examples=30)
    def test_refined_beats_its_explicit_seed(self, case, seed):
        from repro.partition import greedy_edge_cut_partition

        graph, k = case
        seed_assignment = greedy_edge_cut_partition(graph, k, seed=seed)
        cap = balance_cap(graph.num_nodes, k, DEFAULT_BALANCE)
        rebalanced = rebalance_assignment(graph, seed_assignment, k, cap)
        out = refined_partition(graph, k, seed=seed, base="greedy")
        assert boundary_count(graph, out) <= boundary_count(graph, rebalanced)

    @given(case=graph_and_k(), seed=st.integers(0, 2))
    @settings(max_examples=30)
    def test_multilevel_beats_its_projected_seed(self, case, seed):
        graph, k = case
        projected = _multilevel_seed(graph, k, seed)
        cap = balance_cap(graph.num_nodes, k, DEFAULT_BALANCE)
        rebalanced = rebalance_assignment(graph, projected, k, cap)
        out = multilevel_partition(graph, k, seed=seed)
        assert boundary_count(graph, out) <= boundary_count(graph, rebalanced)


class TestRebalance:
    @given(case=graph_and_assignment())
    @settings(max_examples=60)
    def test_output_fits_cap_and_covers_nodes(self, case):
        graph, assignment, k = case
        cap = balance_cap(graph.num_nodes, k, DEFAULT_BALANCE)
        out = rebalance_assignment(graph, assignment, k, cap)
        assert set(out) == set(graph.nodes())
        sizes = [0] * k
        for fid in out.values():
            sizes[fid] += 1
        assert max(sizes) <= cap

    def test_noop_when_already_balanced(self):
        g = erdos_renyi(12, 30, seed=2)
        assignment = {node: i % 3 for i, node in enumerate(g.nodes())}
        cap = balance_cap(12, 3)
        assert rebalance_assignment(g, assignment, 3, cap) == assignment


class TestOnStructuredGraphs:
    """Refinement finds the planted communities a random seed misses."""

    @pytest.fixture(scope="class")
    def two_cliques(self) -> DiGraph:
        g = DiGraph()
        for i in range(20):
            g.add_node(i)
        for i in range(10):
            for j in range(10):
                if i != j:
                    g.add_edge(i, j)
                    g.add_edge(10 + i, 10 + j)
        g.add_edge(0, 10)
        return g

    def test_refined_recovers_the_cliques(self, two_cliques):
        assignment = refined_partition(two_cliques, 2, seed=0)
        # Only the single bridge edge should cross: exactly 2 boundary nodes.
        assert boundary_count(two_cliques, assignment) == 2

    def test_multilevel_recovers_the_cliques(self, two_cliques):
        assignment = multilevel_partition(two_cliques, 2, seed=0)
        assert boundary_count(two_cliques, assignment) == 2

    def test_refined_improves_quality_report(self, two_cliques):
        from repro.partition import hash_partition

        k = 2
        hashed = measure_quality(
            build_fragmentation(two_cliques, hash_partition(two_cliques, k), k)
        )
        refined = measure_quality(
            build_fragmentation(
                two_cliques, refined_partition(two_cliques, k, seed=0), k
            )
        )
        assert refined.num_boundary_nodes < hashed.num_boundary_nodes
        assert refined.traffic_bound() < hashed.traffic_bound()


class TestValidation:
    def test_rejects_zero_fragments(self):
        g = erdos_renyi(8, 16, seed=0)
        with pytest.raises(FragmentationError):
            refined_partition(g, 0)
        with pytest.raises(FragmentationError):
            multilevel_partition(g, 0)

    def test_rejects_incomplete_assignment(self):
        g = erdos_renyi(8, 16, seed=0)
        with pytest.raises(FragmentationError, match="misses"):
            refine_assignment(g, {}, 2)

    def test_rejects_out_of_range_fragment_id(self):
        g = erdos_renyi(8, 16, seed=0)
        bad = {node: 7 for node in g.nodes()}
        with pytest.raises(FragmentationError, match="outside"):
            refine_assignment(g, bad, 2)

    def test_rejects_bad_balance(self):
        with pytest.raises(FragmentationError, match="balance"):
            balance_cap(10, 2, balance=0.5)

    def test_explicit_mapping_base(self):
        g = erdos_renyi(10, 25, seed=1)
        base = {node: 0 for node in g.nodes()}
        out = refined_partition(g, 2, base=base)
        # The all-in-one seed is over cap for k=2; rebalance must fix it.
        sizes = [list(out.values()).count(f) for f in range(2)]
        assert max(sizes) <= balance_cap(10, 2)


class TestBoundedRefinement:
    """``movable``/``max_moves``: the streaming-refinement mode (§8)."""

    def _case(self, seed=4):
        g = erdos_renyi(30, 90, seed=seed)
        assignment = {node: node % 3 for node in g.nodes()}
        return g, assignment

    def test_max_moves_zero_is_identity(self):
        g, assignment = self._case()
        out = refine_assignment(g, assignment, 3, max_moves=0)
        assert out == assignment

    def test_max_moves_caps_changes(self):
        g, assignment = self._case()
        unrestricted = refine_assignment(g, assignment, 3)
        full_moves = sum(
            1 for node in assignment if unrestricted[node] != assignment[node]
        )
        assert full_moves > 2  # the cap below actually binds
        out = refine_assignment(g, assignment, 3, max_moves=2)
        changed = sum(1 for node in assignment if out[node] != assignment[node])
        assert changed <= 2

    def test_empty_movable_is_identity(self):
        g, assignment = self._case()
        assert refine_assignment(g, assignment, 3, movable=set()) == assignment

    def test_moves_confined_to_movable(self):
        g, assignment = self._case()
        movable = {node for node in g.nodes() if node < 10}
        out = refine_assignment(g, assignment, 3, movable=movable)
        changed = {node for node in assignment if out[node] != assignment[node]}
        assert changed <= movable

    @settings(max_examples=30)
    @given(data=graph_and_assignment(), budget=st.integers(0, 6))
    def test_bounded_keeps_invariants(self, data, budget):
        g, assignment, k = data
        movable = {node for node in g.nodes() if node % 2 == 0}
        out = refine_assignment(g, assignment, k, movable=movable, max_moves=budget)
        changed = {node for node in assignment if out[node] != assignment[node]}
        assert len(changed) <= budget
        assert changed <= movable
        assert boundary_count(g, out) <= boundary_count(g, assignment)

    def test_rejects_negative_max_moves(self):
        g, assignment = self._case()
        with pytest.raises(FragmentationError, match="max_moves"):
            refine_assignment(g, assignment, 3, max_moves=-1)

    def test_movable_ignores_foreign_nodes(self):
        g, assignment = self._case()
        out = refine_assignment(g, assignment, 3, movable={"not-a-node", 0, 1})
        changed = {node for node in assignment if out[node] != assignment[node]}
        assert changed <= {0, 1}


def _fragment_sizes(g, assignment, k):
    """The |Fi| proxy refine_assignment caps: owned nodes + out-edges."""
    sizes = [0] * k
    for node in g.nodes():
        sizes[assignment[node]] += 1 + sum(1 for _ in g.successors(node))
    return sizes


class TestConstrainedRefinement:
    """size_cap (|Fi| = nodes+edges) and pinned (data residency) knobs."""

    def _case(self, seed=5, n=24, k=3):
        g = erdos_renyi(n, 3 * n, seed=seed)
        assignment = {node: node % k for node in g.nodes()}
        return g, assignment, k

    def test_rejects_bad_knobs(self):
        g, assignment, k = self._case()
        with pytest.raises(FragmentationError, match="size_cap"):
            refine_assignment(g, assignment, k, size_cap=0)
        with pytest.raises(FragmentationError, match="pinned"):
            refine_assignment(g, assignment, k, pinned={0: k + 5})

    def test_size_cap_never_exceeded_by_moves(self):
        g, assignment, k = self._case()
        cap = max(_fragment_sizes(g, assignment, k))  # feasible from the start
        out = refine_assignment(g, assignment, k, size_cap=cap)
        assert max(_fragment_sizes(g, out, k)) <= cap
        assert boundary_count(g, out) <= boundary_count(g, assignment)

    def test_tight_size_cap_freezes_moves_into_full_fragments(self):
        g, assignment, k = self._case()
        sizes = _fragment_sizes(g, assignment, k)
        # Every fragment is already at (or above) the cap: no move can land.
        out = refine_assignment(g, assignment, k, size_cap=min(sizes))
        grown = [
            f for f in range(k)
            if _fragment_sizes(g, out, k)[f] > max(sizes[f], min(sizes))
        ]
        assert not grown

    def test_pinned_nodes_never_leave_their_fragment(self):
        g, assignment, k = self._case()
        pinned = {node: assignment[node] for node in list(g.nodes())[:8]}
        out = refine_assignment(g, assignment, k, pinned=pinned)
        for node, home in pinned.items():
            assert out[node] == home
        assert boundary_count(g, out) <= boundary_count(g, assignment)

    def test_pinned_node_may_move_home_only(self):
        g, assignment, k = self._case()
        stray = next(iter(sorted(g.nodes())))
        home = (assignment[stray] + 1) % k
        pinned = {stray: home}
        out = refine_assignment(g, assignment, k, pinned=pinned)
        assert out[stray] in (assignment[stray], home)

    @settings(max_examples=25)
    @given(data=graph_and_assignment())
    def test_constraints_keep_invariants(self, data):
        g, assignment, k = data
        nodes = sorted(g.nodes())
        pinned = {node: assignment[node] for node in nodes[::3]}
        cap = max(_fragment_sizes(g, assignment, k)) if nodes else 1
        out = refine_assignment(g, assignment, k, size_cap=cap, pinned=pinned)
        assert boundary_count(g, out) <= boundary_count(g, assignment)
        assert max(_fragment_sizes(g, out, k), default=0) <= cap
        for node, home in pinned.items():
            assert out[node] == home

    def test_monitor_threads_constraints_through(self):
        from repro.distributed import SimulatedCluster
        from repro.partition import MutationMonitor

        g, assignment, k = self._case()
        cluster = SimulatedCluster(build_fragmentation(g, assignment, k))
        pinned = {node: assignment[node] for node in list(sorted(g.nodes()))[:6]}
        sizes = _fragment_sizes(g, assignment, k)
        monitor = MutationMonitor(
            cluster,
            drift_threshold=100.0,
            move_budget=16,
            region_hops=3,
            size_cap=max(sizes),
            pinned=pinned,
        )
        nodes = sorted(g.nodes())
        added = 0
        for u in nodes:
            for v in nodes:
                if added >= 10:
                    break
                fragment = cluster.fragmentation[cluster.fragmentation.placement[u]]
                if u == v or fragment.local_graph.has_edge(u, v):
                    continue
                cluster.apply_edge_mutation(u, v, add=True)
                added += 1
        monitor.refine()
        placement = cluster.fragmentation.placement
        for node, home in pinned.items():
            assert placement[node] == home

    def test_monitor_rejects_bad_size_cap(self):
        from repro.distributed import SimulatedCluster
        from repro.partition import MutationMonitor

        g, assignment, k = self._case()
        cluster = SimulatedCluster(build_fragmentation(g, assignment, k))
        with pytest.raises(FragmentationError, match="size_cap"):
            MutationMonitor(cluster, size_cap=0)


class TestMultilevelSeedDiversity:
    """multilevel races several coarsening seeds and keeps the best."""

    def _quality(self, g, assignment):
        from repro.partition.refine import _cut_count

        return boundary_count(g, assignment), _cut_count(g, assignment)

    def test_more_seeds_never_worse(self):
        g = erdos_renyi(40, 120, seed=2)
        single = multilevel_partition(g, 4, seed=0, seeds=1)
        raced = multilevel_partition(g, 4, seed=0, seeds=3)
        assert self._quality(g, raced) <= self._quality(g, single)

    def test_deterministic_in_seeds(self):
        g = erdos_renyi(30, 90, seed=7)
        assert multilevel_partition(g, 3, seed=1, seeds=3) == multilevel_partition(
            g, 3, seed=1, seeds=3
        )

    def test_single_seed_reproduces_historical_pipeline(self):
        g = erdos_renyi(30, 90, seed=9)
        cap = balance_cap(g.num_nodes, 3, DEFAULT_BALANCE)
        projected = _multilevel_seed(g, 3, 4)
        expected = refine_assignment(
            g, rebalance_assignment(g, projected, 3, cap), 3
        )
        assert multilevel_partition(g, 3, seed=4, seeds=1) == expected

    def test_rejects_bad_seeds(self):
        g = erdos_renyi(10, 20, seed=1)
        with pytest.raises(FragmentationError, match="seeds"):
            multilevel_partition(g, 2, seeds=0)
