"""``repro.connect()``: one client surface over both transports.

The api_redesign contract: ``connect()`` accepts a graph, a cluster, or a
``host:port`` address of a ``repro-serve`` front end, and the returned
client's ``query``/``batch``/``session`` behave identically over both
transports (answers and modeled stats bit-identical; sessions see
mutations).  Old entry points (``repro.evaluate`` & co.) keep working
behind :class:`DeprecationWarning` shims, while their home-module imports
stay warning-free.
"""

from __future__ import annotations

import socket
import threading
import warnings

import pytest

import repro
from repro import DiGraph, connect
from repro.client import LocalClient, RemoteClient
from repro.core.queries import BoundedReachQuery, ReachQuery, RegularReachQuery
from repro.distributed import SimulatedCluster
from repro.errors import DistributedError, QueryError
from repro.net.framing import recv_frame, send_frame
from repro.net.server import ServingServer, percentile, start_background_server
from repro.serving.engine import BatchQueryEngine


def _chain_graph() -> DiGraph:
    g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    g.set_label("b", "HR")
    g.set_label("c", "DB")
    return g


QUERIES = [
    ReachQuery("a", "d"),
    ReachQuery("d", "a"),
    BoundedReachQuery("a", "d", 2),
    RegularReachQuery("a", "d", "HR DB"),
]


@pytest.fixture(scope="module")
def server():
    """One background repro-serve front end over the chain graph."""
    cluster = SimulatedCluster.from_graph(
        _chain_graph(), 2, partitioner="chunk", seed=0
    )
    srv = start_background_server(BatchQueryEngine(cluster), window=0.001)
    yield srv
    srv.shutdown()


class TestConnectLocal:
    def test_graph_target_builds_a_cluster(self):
        client = connect(_chain_graph(), fragments=2, seed=0)
        assert isinstance(client, LocalClient)
        assert client.cluster.num_sites == 2
        assert client.query(ReachQuery("a", "d")).answer is True
        assert client.query(ReachQuery("d", "a")).answer is False

    def test_cluster_target_serves_as_is(self):
        cluster = SimulatedCluster.from_graph(
            _chain_graph(), 3, partitioner="chunk", seed=0
        )
        client = connect(cluster)
        assert client.cluster is cluster
        batch = client.batch(QUERIES)
        assert batch.answers == [True, False, False, True]

    def test_parameter_names_match_the_cli(self):
        client = connect(
            _chain_graph(),
            fragments=2,
            partitioner="hash",
            executor="sequential",
            seed=3,
        )
        assert client.query(ReachQuery("a", "d")).answer is True

    def test_session_tracks_mutations(self):
        client = connect(_chain_graph(), fragments=2, seed=0)
        session = client.session(ReachQuery("a", "d"))
        assert session.answer is True
        session.remove_edge("c", "d")
        assert session.answer is False
        session.add_edge("a", "d")
        assert session.answer is True

    def test_session_rejects_unsupported_query_class(self):
        client = connect(_chain_graph(), fragments=2, seed=0)
        with pytest.raises(QueryError, match="no incremental session"):
            client.session(BoundedReachQuery("a", "d", 2))

    def test_stats_counts_served_queries(self):
        client = connect(_chain_graph(), fragments=2, seed=0)
        client.query(ReachQuery("a", "d"))
        client.batch(QUERIES)
        stats = client.stats()
        assert stats["served"] == 1 + len(QUERIES)
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_kernel_default_applies_to_every_call(self):
        pytest.importorskip("numpy")
        plain = connect(_chain_graph(), fragments=2, seed=0)
        vectorized = connect(_chain_graph(), fragments=2, seed=0, kernel="numpy")
        for query in QUERIES:
            a, b = plain.query(query), vectorized.query(query)
            assert a.answer == b.answer
            assert a.stats.traffic_bytes == b.stats.traffic_bytes
        # the decorator still exposes the wrapped client's attributes
        assert vectorized.cluster.num_sites == 2

    def test_garbage_target_rejected(self):
        with pytest.raises(QueryError, match="connect\\(\\) takes"):
            connect(42)
        with pytest.raises(QueryError):
            connect("no-colon-here")


class TestDeprecationShims:
    def test_evaluate_warns_and_still_works(self):
        cluster = SimulatedCluster.from_graph(
            _chain_graph(), 2, partitioner="chunk", seed=0
        )
        with pytest.warns(DeprecationWarning, match="repro.evaluate is deprecated"):
            result = repro.evaluate(cluster, ReachQuery("a", "d"))
        assert result.answer is True

    @pytest.mark.parametrize(
        "name",
        [
            "evaluate",
            "execute_plans",
            "BatchQueryEngine",
            "IncrementalReachSession",
            "IncrementalRegularSession",
        ],
    )
    def test_every_shim_warns_and_resolves(self, name):
        with pytest.warns(DeprecationWarning, match=f"repro.{name} is deprecated"):
            assert getattr(repro, name) is not None
        assert name in dir(repro)

    def test_home_module_imports_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.core.engine import evaluate  # noqa: F401
            from repro.serving.engine import (  # noqa: F401
                BatchQueryEngine,
                execute_plans,
            )

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_thing


class TestRemoteTransport:
    def test_query_identical_to_local(self, server):
        local = connect(
            SimulatedCluster.from_graph(
                _chain_graph(), 2, partitioner="chunk", seed=0
            )
        )
        with connect(server.address) as remote:
            assert isinstance(remote, RemoteClient)
            for query in QUERIES:
                mine = remote.query(query)
                reference = local.query(query)
                assert mine.answer == reference.answer
                assert mine.stats.traffic_bytes == reference.stats.traffic_bytes
                assert mine.stats.total_visits == reference.stats.total_visits

    def test_batch_identical_to_local(self, server):
        local = connect(
            SimulatedCluster.from_graph(
                _chain_graph(), 2, partitioner="chunk", seed=0
            )
        )
        with connect(server.address) as remote:
            assert remote.batch(QUERIES).answers == local.batch(QUERIES).answers

    def test_remote_session_sees_mutations(self, server):
        with connect(server.address) as remote:
            session = remote.session(ReachQuery("a", "d"))
            assert session.answer is True
            session.remove_edge("c", "d")
            assert session.answer is False
            session.add_edge("c", "d")  # restore for the other tests
            assert session.answer is True
            session.close()
            with pytest.raises(QueryError, match="closed"):
                session.answer

    def test_remote_session_rejects_unsupported_query_class(self, server):
        with connect(server.address) as remote:
            with pytest.raises(QueryError, match="no incremental session"):
                remote.session(BoundedReachQuery("a", "d", 2))

    def test_remote_errors_reraise_client_side(self, server):
        with connect(server.address) as remote:
            with pytest.raises(QueryError, match="unknown algorithm|not batchable"):
                remote.query(ReachQuery("a", "d"), algorithm="nope")

    def test_stats_report_latency_percentiles(self, server):
        with connect(server.address) as remote:
            remote.query(ReachQuery("a", "d"))
            stats = remote.stats()
        assert stats["served"] >= 1
        assert stats["batches"] >= 1
        assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0
        assert stats["open_sessions"] == 0

    def test_malformed_frame_gets_clean_error_then_close(self, server):
        host, _, port = server.address.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(b"JUNKJUNKJUNK")
            reply = recv_frame(sock)
            assert reply["qid"] is None
            assert isinstance(reply["error"], QueryError)
            with pytest.raises(EOFError):
                recv_frame(sock)

    def test_unknown_op_reports_query_error(self, server):
        host, _, port = server.address.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            send_frame(sock, {"op": "mystery", "qid": 1})
            reply = recv_frame(sock)
            assert reply["qid"] == 1
            assert isinstance(reply["error"], QueryError)

    def test_query_frame_without_body_gets_clean_error(self, server):
        # A 'query' op missing its 'query' key must be rejected at
        # dispatch — not enqueued where it would crash the batcher.
        host, _, port = server.address.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            send_frame(sock, {"op": "query", "qid": 7})
            reply = recv_frame(sock)
            assert reply["qid"] == 7
            assert isinstance(reply["error"], QueryError)
        # The batcher is still alive: a well-formed query still answers.
        with connect(server.address) as remote:
            assert remote.query(ReachQuery("a", "d")).answer is True

    def test_concurrent_clients_are_admission_batched(self, server):
        answers = {}
        errors = []

        def drive(i):
            try:
                with connect(server.address) as remote:
                    answers[i] = remote.query(ReachQuery("a", "d")).answer
            except BaseException as exc:  # noqa: BLE001 - joined below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert answers == {i: True for i in range(6)}


class TestBackpressureAndValidation:
    def test_tiny_inflight_bound_still_serves_everything(self):
        cluster = SimulatedCluster.from_graph(
            _chain_graph(), 2, partitioner="chunk", seed=0
        )
        server = start_background_server(
            BatchQueryEngine(cluster), window=0.0, max_batch=1, max_inflight=1
        )
        try:
            answers = []

            def drive():
                with connect(server.address) as remote:
                    answers.append(remote.query(ReachQuery("a", "d")).answer)

            threads = [threading.Thread(target=drive) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert answers == [True] * 4
        finally:
            server.shutdown()

    def test_batcher_survives_unexpected_engine_error(self):
        # A non-ReproError escaping the engine must fail that batch's
        # queries, not kill the batcher coroutine for good.
        class FlakyEngine:
            def __init__(self, engine):
                self._engine = engine
                self.boom = True

            def run_batch(self, *args, **kwargs):
                if self.boom:
                    self.boom = False
                    raise RuntimeError("engine bug")
                return self._engine.run_batch(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self._engine, name)

        cluster = SimulatedCluster.from_graph(
            _chain_graph(), 2, partitioner="chunk", seed=0
        )
        server = start_background_server(
            BatchQueryEngine(cluster), window=0.0
        )
        server.engine = FlakyEngine(server.engine)
        try:
            with connect(server.address) as remote:
                with pytest.raises(QueryError, match="internal serving error"):
                    remote.query(ReachQuery("a", "d"))
                assert remote.query(ReachQuery("a", "d")).answer is True
        finally:
            server.shutdown()

    def test_constructor_validation(self):
        engine = object()
        with pytest.raises(DistributedError, match="window"):
            ServingServer(engine, window=-0.1)
        with pytest.raises(DistributedError, match="max_batch"):
            ServingServer(engine, max_batch=0)
        with pytest.raises(DistributedError, match="max_inflight"):
            ServingServer(engine, max_inflight=0)

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([0.25], 0.99) == 0.25
        samples = [0.01 * i for i in range(1, 101)]
        assert percentile(samples, 0.99) == pytest.approx(0.99)
        assert percentile(samples, 1.0) == pytest.approx(1.0)
        assert percentile(samples, 0.0) == pytest.approx(0.01)
