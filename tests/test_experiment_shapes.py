"""Shape tests: the paper's qualitative experimental claims, asserted.

These run the actual experiment workloads at reduced scale and check the
*relationships* the paper reports (Section 7 Summary) — who wins, and how
curves move with card(F).  They are the automated counterpart of
EXPERIMENTS.md.  Marked slow: ~1 minute total.
"""

import pytest

from repro.bench.harness import run_workload
from repro.core.kernels import set_default_kernel
from repro.distributed import SimulatedCluster
from repro.workload import (
    load_dataset,
    random_reach_queries,
    random_regular_queries,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", autouse=True)
def _reference_kernel():
    # These tests assert *relative timing* relationships between the
    # paper's algorithms, which hold for the reference python kernel; a
    # vectorized kernel shifts constant factors on these tiny CI-scale
    # fixtures (array setup dominates sub-ms sweeps).  Kernel identity
    # and speedups are asserted elsewhere (test_kernels.py, bench).
    set_default_kernel("python")
    yield
    set_default_kernel(None)


@pytest.fixture(scope="module")
def table2_metrics():
    out = {}
    for name in ["livejournal", "wikitalk", "berkstan", "notredame", "amazon"]:
        graph = load_dataset(name, scale=0.002, seed=0)
        cluster = SimulatedCluster.from_graph(graph, 4, "chunk")
        queries = random_reach_queries(graph, 4, seed=0)
        out[name] = {
            algo: run_workload(cluster, queries, algo)
            for algo in ["disReach", "disReachn", "disReachm"]
        }
    return out


class TestTable2Shapes:
    """Table 2 / Exp-1: 'disReach is far more efficient than disReachn and
    disReachm'; traffic of disReach ~9% of disReachn; disReachm ships least
    but visits sites unboundedly."""

    def test_time_ordering(self, table2_metrics):
        for name, m in table2_metrics.items():
            t = {a: m[a].mean_response_seconds for a in m}
            assert t["disReach"] < t["disReachn"], name
            assert t["disReach"] < t["disReachm"], name

    def test_traffic_ordering(self, table2_metrics):
        for name, m in table2_metrics.items():
            b = {a: m[a].mean_traffic_bytes for a in m}
            assert b["disReach"] < b["disReachn"], name
            # disReachm ships least in the paper; at our scale it is
            # comparable-or-less (within ~15% on the two smallest analogs).
            assert b["disReachm"] <= b["disReach"] * 1.15, name

    def test_disreach_ships_small_fraction_of_graph(self, table2_metrics):
        for name, m in table2_metrics.items():
            ratio = (
                m["disReach"].mean_traffic_bytes
                / m["disReachn"].mean_traffic_bytes
            )
            assert ratio < 0.35, (name, ratio)  # paper: <=11% on average

    def test_visit_counts(self, table2_metrics):
        for name, m in table2_metrics.items():
            assert m["disReach"].max_visits_per_site == 1, name
            assert m["disReachn"].max_visits_per_site == 1, name
            assert m["disReachm"].max_visits_per_site > 4, name


class TestFig11aShape:
    """disReach gets faster with card(F); disReachm gets slower."""

    def test_trends(self):
        graph = load_dataset("livejournal", scale=0.001, seed=0)
        queries = random_reach_queries(graph, 3, seed=0)
        times = {}
        for card in (2, 10, 20):
            cluster = SimulatedCluster.from_graph(graph, card, "chunk")
            times[card] = {
                algo: run_workload(cluster, queries, algo).mean_response_seconds
                for algo in ["disReach", "disReachm"]
            }
        assert times[20]["disReach"] < times[2]["disReach"]
        assert times[20]["disReachm"] > times[2]["disReachm"]


class TestFig11efShapes:
    """disRPQ beats disRPQn and disRPQd; ships at most what disRPQd ships
    and far less than disRPQn."""

    @pytest.fixture(scope="class")
    def rpq_metrics(self):
        out = {}
        for name in ["youtube", "citation"]:
            graph = load_dataset(name, scale=0.005, seed=0)
            cluster = SimulatedCluster.from_graph(graph, 10, "chunk")
            queries = random_regular_queries(graph, 3, num_states=8, seed=0)
            out[name] = {
                algo: run_workload(cluster, queries, algo)
                for algo in ["disRPQ", "disRPQn", "disRPQd"]
            }
        return out

    def test_time_ordering(self, rpq_metrics):
        for name, m in rpq_metrics.items():
            t = {a: m[a].mean_response_seconds for a in m}
            assert t["disRPQ"] < t["disRPQn"], name
            # vs disRPQd the single-digit-ms datapoints carry timing noise;
            # allow 35% (EXPERIMENTS.md documents one genuine inversion on
            # the label-heavy citation analog).
            assert t["disRPQ"] <= t["disRPQd"] * 1.35, name

    def test_traffic_ordering(self, rpq_metrics):
        for name, m in rpq_metrics.items():
            b = {a: m[a].mean_traffic_bytes for a in m}
            assert b["disRPQ"] <= b["disRPQd"], name
            assert b["disRPQ"] < 0.5 * b["disRPQn"], name

    def test_visits(self, rpq_metrics):
        for name, m in rpq_metrics.items():
            assert m["disRPQ"].max_visits_per_site == 1, name
            assert m["disRPQd"].max_visits_per_site == 2, name


class TestFig11lShape:
    """MRdRPQ gets faster with more mappers."""

    def test_mapper_scaling(self):
        from repro.mapreduce import MapReduceRuntime, mrd_rpq

        graph = load_dataset("youtube", scale=0.005, seed=0)
        queries = random_regular_queries(graph, 2, num_states=6, seed=0)
        runtime = MapReduceRuntime()

        def mean_response(mappers):
            return sum(
                mrd_rpq(graph, q, mappers, runtime=runtime).stats.response_seconds
                for q in queries
            ) / len(queries)

        assert mean_response(20) < mean_response(2)
