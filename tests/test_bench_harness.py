"""Unit tests for the bench harness and a smoke pass over every experiment."""

import pytest

from repro.bench import EXPERIMENTS, ExperimentResult, run_workload
from repro.distributed import SimulatedCluster
from repro.graph import erdos_renyi
from repro.workload import random_reach_queries


class TestRunWorkload:
    @pytest.fixture
    def setup(self):
        g = erdos_renyi(40, 120, seed=1, num_labels=3)
        cluster = SimulatedCluster.from_graph(g, 3, "chunk")
        queries = random_reach_queries(g, 5, seed=1)
        return g, cluster, queries

    def test_aggregates(self, setup):
        _, cluster, queries = setup
        metrics = run_workload(cluster, queries, "disReach")
        assert metrics.num_queries == 5
        assert metrics.mean_response_seconds > 0
        assert metrics.mean_traffic_bytes > 0
        assert metrics.max_visits_per_site == 1
        assert 0.0 <= metrics.positive_fraction <= 1.0

    def test_rejects_empty_workload(self, setup):
        _, cluster, _ = setup
        with pytest.raises(ValueError):
            run_workload(cluster, [], "disReach")

    def test_traffic_mb_helper(self, setup):
        _, cluster, queries = setup
        metrics = run_workload(cluster, queries, "disReach")
        assert metrics.mean_traffic_mb == pytest.approx(
            metrics.mean_traffic_bytes / 1e6
        )


class TestExperimentResult:
    def test_table_formatting(self):
        result = ExperimentResult("x", "Title", ["a", "b"])
        result.add_row(a=1, b=2.5)
        result.add_row(a="hello", b=None)
        text = result.format_table()
        assert "Title" in text and "hello" in text and "-" in text

    def test_column_accessor(self):
        result = ExperimentResult("x", "T", ["a"])
        result.add_row(a=1)
        result.add_row(a=2)
        assert result.column("a") == [1, 2]

    def test_csv(self):
        result = ExperimentResult("x", "T", ["a", "b"])
        result.add_row(a=1, b=2)
        assert result.to_csv() == "a,b\n1,2\n"


class TestExperimentRegistry:
    def test_all_twenty_four_registered(self):
        expected = {
            "table2", "fig11a", "fig11b", "fig11c", "fig11d", "fig11e",
            "fig11f", "fig11g", "fig11h", "fig11i", "fig11j", "fig11k",
            "fig11l", "ablation-index", "ablation-partitioner", "workload",
            "partition", "mutation", "baselines", "kernels", "serving",
            "snap", "oracles", "shortcuts",
        }
        assert set(EXPERIMENTS) == expected


# Tiny-scale smoke runs: every experiment must execute and produce rows.
_TINY = {
    "table2": dict(scale=0.0002, num_queries=1),
    "fig11a": dict(scale=0.0002, cards=(2, 4), num_queries=1),
    "fig11b": dict(scale=0.0005, size_ticks=(35_000, 75_000), num_queries=1),
    "fig11c": dict(scale=0.00002, cards=(10, 12), num_queries=1),
    "fig11d": dict(scale=0.0002, cards=(2, 4), num_queries=1),
    "fig11e": dict(scale=0.001, num_queries=1),
    "fig11f": dict(scale=0.001, num_queries=1),
    "fig11g": dict(scale=0.001, complexities=((4, 8), (6, 12)), num_queries=1),
    "fig11h": dict(scale=0.0005, size_ticks=(35_000, 75_000), num_queries=1),
    "fig11i": dict(scale=0.0005, cards=(6, 8), num_queries=1),
    "fig11j": dict(scale=0.00002, cards=(10, 12), num_queries=1),
    "fig11k": dict(scale=0.001, size_ticks=(35_000,), num_queries=1),
    "fig11l": dict(scale=0.001, mapper_counts=(2, 4), num_queries=1),
    "ablation-index": dict(scale=0.0005, num_queries=2),
    "ablation-partitioner": dict(scale=0.0005, num_queries=2),
    "workload": dict(scale=0.005, num_queries=8, distinct=3),
    "partition": dict(
        scale=0.001, num_queries=1, card=3,
        datasets=("amazon", "youtube"), partitioners=("hash", "refined"),
    ),
    "mutation": dict(
        scale=0.001, num_queries=6, card=3, num_mutations=6, rounds=3,
        sessions=2,
    ),
    "baselines": dict(scale=0.0005, num_queries=1),
    # "kernels" is absent by design: its jobs rows legitimately omit the
    # backend/answers columns, so the every-column-in-every-row check below
    # does not apply; tests/test_kernels.py smoke-runs it instead.
    # "serving" is absent for the same reason (the direct row has no
    # batch/latency columns); test_exp_serving_smoke below runs it.
    # "snap" is absent likewise (its load/replay rows only carry their own
    # column subset); tests/test_snap.py::TestExpSnap smoke-runs it.
    # "shortcuts" is absent likewise (the by-construction reach x disDistm
    # skip row carries only the status columns); test_exp_shortcuts_smoke
    # below runs it.
}


@pytest.mark.parametrize("name", sorted(_TINY))
def test_experiment_smoke(name):
    result = EXPERIMENTS[name](**_TINY[name])
    assert isinstance(result, ExperimentResult)
    assert result.rows, name
    assert result.experiment.replace("-", "").startswith(name.split("-")[0].replace("-", "")) or True
    # every declared column appears in every row
    for row in result.rows:
        for column in result.columns:
            assert column in row, (name, column)
    # formatting must not crash
    assert result.format_table()


def test_exp_shortcuts_smoke():
    """Tiny path-only shortcuts run: every mode present, reductions real."""
    result = EXPERIMENTS["shortcuts"](scale=0.002, card=3, datasets=("path",))
    assert isinstance(result, ExperimentResult)
    rows = {(row["mode"], row["algorithm"]): row for row in result.rows}
    assert set(rows) == {
        ("none", "disReachm"), ("none", "disDistm"),
        ("reach", "disReachm"), ("reach", "disDistm"),
        ("hopset", "disReachm"), ("hopset", "disDistm"),
    }
    assert rows[("reach", "disDistm")]["status"].startswith("skipped")
    for key, row in rows.items():
        if key == ("reach", "disDistm"):
            continue
        assert row["status"] == "ok"
        # same workload answers under every mode (identity), and the
        # shortcut modes actually cut supersteps on the 200-node path
        assert row["answers"] == rows[("none", row["algorithm"])]["answers"]
        if row["mode"] == "none":
            assert row["reduction"] == 1
        else:
            assert row["reduction"] > 1
            assert row["supersteps"] < rows[("none", row["algorithm"])]["supersteps"]
    assert result.format_table()


def test_exp_serving_smoke():
    """Tiny closed-loop serving run: both rows present, answers identical."""
    result = EXPERIMENTS["serving"](
        scale=0.001, num_queries=6, card=3, clients=2
    )
    assert isinstance(result, ExperimentResult)
    rows = {row["mode"]: row for row in result.rows}
    assert set(rows) == {"direct", "serving"}
    assert rows["direct"]["answers_match"] == 1
    assert rows["serving"]["answers_match"] == 1
    assert rows["serving"]["batches"] >= 1
    assert rows["serving"]["p99_ms"] >= rows["serving"]["p50_ms"] >= 0.0
    assert result.format_table()
