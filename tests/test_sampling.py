"""Unit tests for language sampling and Python-regex rendering."""

import random
import re

import pytest

from repro.automata import PositionNFA, parse_regex, sample_word, sample_words, to_python_regex


class TestSampleWord:
    @pytest.mark.parametrize(
        "regex", ["a", "a b", "a | b", "a*", "(a b)* c", "a+ | b?", "()"]
    )
    def test_samples_are_members(self, regex):
        nfa = PositionNFA.from_regex(regex)
        for seed in range(10):
            word = sample_word(regex, random.Random(seed))
            assert nfa.accepts(word), (regex, word)

    def test_wildcard_uses_alphabet(self):
        word = sample_word(".", random.Random(0), alphabet=["X", "Y"])
        assert word[0] in {"X", "Y"}

    def test_sample_words_count(self):
        words = sample_words("a | b", 7, seed=1)
        assert len(words) == 7


class TestToPythonRegex:
    def test_rejects_multichar_labels_without_map(self):
        with pytest.raises(ValueError):
            to_python_regex("DB")

    def test_symbol_map(self):
        pattern = to_python_regex("DB HR*", symbol_map={"DB": "d", "HR": "h"})
        assert re.fullmatch(pattern, "dhh")
        assert not re.fullmatch(pattern, "hd")

    def test_escapes_regex_metachars(self):
        pattern = to_python_regex(parse_regex('"+"'))
        assert re.fullmatch(pattern, "+")

    def test_epsilon(self):
        pattern = to_python_regex("()")
        assert re.fullmatch(pattern, "")
        assert not re.fullmatch(pattern, "a")
