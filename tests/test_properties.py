"""Property-based tests (hypothesis) for the core invariants.

Each property pins one of the reproduction's semantic anchors:

* the two BES solvers and the naive fixpoint agree on arbitrary systems;
* Dijkstra and Bellman-Ford agree on arbitrary min-plus systems;
* Glushkov NFA acceptance agrees with Python's ``re`` on arbitrary ASTs;
* reach-set sweeps agree with per-node BFS on arbitrary digraphs;
* fragmentation invariants hold for arbitrary assignments, and
  disReach/disDist/disRPQ agree with the centralized oracles on them.
"""

import re

from hypothesis import given, settings, strategies as st

from repro.automata import PositionNFA, to_python_regex
from repro.automata import ast as rast
from repro.core import (
    BooleanEquationSystem,
    MinPlusSystem,
    TRUE,
    bounded_reachable,
    dis_dist,
    dis_reach,
    dis_rpq,
    reachable,
    regular_reachable,
)
from repro.core.minplus import TARGET
from repro.distributed import SimulatedCluster
from repro.graph import DiGraph, is_reachable, reachable_seed_sets
from repro.partition import build_fragmentation, check_fragmentation

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
node_ids = st.integers(min_value=0, max_value=14)


@st.composite
def digraphs(draw, max_nodes=15, labels=("A", "B", "C")):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=3 * n,
        )
    )
    g = DiGraph()
    for i in range(n):
        g.add_node(i, label=draw(st.sampled_from(labels)))
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def regexes(draw, alphabet="abc", max_depth=4):
    def build(depth):
        if depth <= 0:
            return draw(
                st.sampled_from(
                    [rast.Epsilon()] + [rast.Symbol(c) for c in alphabet]
                )
            )
        kind = draw(st.integers(0, 4))
        if kind == 0:
            return draw(st.sampled_from([rast.Symbol(c) for c in alphabet]))
        if kind == 1:
            return rast.Concat((build(depth - 1), build(depth - 1)))
        if kind == 2:
            return rast.Union((build(depth - 1), build(depth - 1)))
        if kind == 3:
            return rast.Star(build(depth - 1))
        return rast.Epsilon()

    return build(max_depth)


@st.composite
def bes_systems(draw):
    num_vars = draw(st.integers(1, 12))
    bes = BooleanEquationSystem()
    for var in range(num_vars):
        disjuncts = set(
            draw(st.lists(st.integers(0, num_vars - 1), max_size=4))
        )
        if draw(st.booleans()) and draw(st.integers(0, 3)) == 0:
            disjuncts.add(TRUE)
        bes.add_equation(var, disjuncts)
    return bes


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------
@given(bes_systems())
@settings(max_examples=80, deadline=None)
def test_bes_solvers_agree(bes):
    fixpoint = bes.solve_fixpoint()
    assert bes.solve_all() == fixpoint
    for var in bes.variables():
        assert bes.solve_reachability(var) == fixpoint[var]


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 9), st.integers(0, 9)),
        max_size=30,
    ),
    st.integers(0, 8),
)
@settings(max_examples=80, deadline=None)
def test_minplus_solvers_agree(equations, source):
    mps = MinPlusSystem()
    for var, successor, weight in equations:
        succ = TARGET if successor == 9 else successor
        mps.add_equation(var, [(succ, float(weight))])
    assert mps.solve_distance(source) == mps.solve_bellman_ford(source)


@given(regexes(), st.lists(st.sampled_from("abcx"), max_size=6))
@settings(max_examples=150, deadline=None)
def test_nfa_agrees_with_python_re(regex, word):
    nfa = PositionNFA.from_regex(regex)
    pattern = re.compile(to_python_regex(regex))
    assert nfa.accepts(word) == bool(pattern.fullmatch("".join(word)))


@given(digraphs(), st.lists(node_ids, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_reachsets_agree_with_bfs(graph, seed_pool):
    seeds = [s for s in seed_pool if graph.has_node(s)]
    if not seeds:
        return
    sets = reachable_seed_sets(graph.nodes(), graph.successors, seeds)
    for node in graph.nodes():
        expected = frozenset(s for s in seeds if is_reachable(graph, node, s))
        assert sets[node] == expected


@given(digraphs(), st.integers(1, 4), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_random_fragmentations_are_valid(graph, k, salt):
    assignment = {node: (hash((node, salt)) % k) for node in graph.nodes()}
    fragmentation = build_fragmentation(graph, assignment, k)
    check_fragmentation(graph, fragmentation)


@given(digraphs(), st.integers(1, 4), node_ids, node_ids)
@settings(max_examples=40, deadline=None)
def test_disreach_matches_centralized(graph, k, s, t):
    if not (graph.has_node(s) and graph.has_node(t)):
        return
    assignment = {node: node % k for node in graph.nodes()}
    cluster = SimulatedCluster(build_fragmentation(graph, assignment, k))
    assert dis_reach(cluster, (s, t)).answer == reachable(graph, s, t)


@given(digraphs(), st.integers(1, 4), node_ids, node_ids, st.integers(0, 6))
@settings(max_examples=40, deadline=None)
def test_disdist_matches_centralized(graph, k, s, t, bound):
    if not (graph.has_node(s) and graph.has_node(t)):
        return
    assignment = {node: node % k for node in graph.nodes()}
    cluster = SimulatedCluster(build_fragmentation(graph, assignment, k))
    assert (
        dis_dist(cluster, (s, t, bound)).answer
        == bounded_reachable(graph, s, t, bound)
    )


@given(
    digraphs(),
    st.integers(1, 3),
    node_ids,
    node_ids,
    st.sampled_from(["A* | B*", ". *", "B A*", "A? (B | C)*", "()"]),
)
@settings(max_examples=40, deadline=None)
def test_disrpq_matches_centralized(graph, k, s, t, regex):
    if not (graph.has_node(s) and graph.has_node(t)):
        return
    assignment = {node: node % k for node in graph.nodes()}
    cluster = SimulatedCluster(build_fragmentation(graph, assignment, k))
    assert dis_rpq(cluster, (s, t, regex)).answer == regular_reachable(
        graph, s, t, regex
    )


@given(digraphs(), st.integers(1, 4), node_ids, node_ids)
@settings(max_examples=30, deadline=None)
def test_visit_guarantee_always_holds(graph, k, s, t):
    if not (graph.has_node(s) and graph.has_node(t)) or s == t:
        return
    assignment = {node: node % k for node in graph.nodes()}
    cluster = SimulatedCluster(build_fragmentation(graph, assignment, k))
    result = dis_reach(cluster, (s, t))
    assert result.stats.max_visits_per_site == 1
    assert result.stats.total_visits == cluster.num_sites
