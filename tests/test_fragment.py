"""Unit tests for fragments and fragmentations (Section 2.1)."""

import pytest

from repro.errors import FragmentationError, NodeNotFound
from repro.graph import DiGraph
from repro.partition import build_fragmentation


@pytest.fixture
def two_frag():
    """a,b at site 0; c,d at site 1; edges a->b->c->d and d->a."""
    g = DiGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        labels={"a": "A", "b": "B", "c": "C", "d": "D"},
    )
    assignment = {"a": 0, "b": 0, "c": 1, "d": 1}
    return g, build_fragmentation(g, assignment)


class TestBuilder:
    def test_ownership(self, two_frag):
        _, frag = two_frag
        assert frag[0].nodes == {"a", "b"}
        assert frag[1].nodes == {"c", "d"}

    def test_virtual_nodes(self, two_frag):
        _, frag = two_frag
        assert frag[0].virtual_nodes == {"c"}
        assert frag[1].virtual_nodes == {"a"}

    def test_in_nodes(self, two_frag):
        _, frag = two_frag
        assert frag[0].in_nodes == {"a"}
        assert frag[1].in_nodes == {"c"}

    def test_cross_edges(self, two_frag):
        _, frag = two_frag
        assert frag[0].cross_edges == (("b", "c"),)
        assert frag[1].cross_edges == (("d", "a"),)

    def test_local_graph_contains_virtuals_with_labels(self, two_frag):
        _, frag = two_frag
        local = frag[0].local_graph
        assert local.has_node("c")
        assert local.label("c") == "C"
        assert local.has_edge("b", "c")
        # ... but no outgoing edges from the virtual node
        assert local.successors("c") == set()

    def test_virtual_node_not_owned(self, two_frag):
        _, frag = two_frag
        assert "c" not in frag[0]
        assert "a" in frag[0]

    def test_missing_assignment_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(FragmentationError):
            build_fragmentation(g, {"a": 0})

    def test_out_of_range_assignment_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(FragmentationError):
            build_fragmentation(g, {"a": 0, "b": 5}, num_fragments=2)

    def test_empty_fragment_allowed(self):
        g = DiGraph.from_edges([("a", "b")])
        frag = build_fragmentation(g, {"a": 0, "b": 0}, num_fragments=3)
        assert len(frag) == 3
        assert frag[1].nodes == frozenset()
        assert frag[1].size == 0


class TestFragmentationViews:
    def test_fragment_of(self, two_frag):
        _, frag = two_frag
        assert frag.fragment_of("a").fid == 0
        assert frag.fragment_of("d").fid == 1
        with pytest.raises(NodeNotFound):
            frag.fragment_of("zzz")

    def test_sizes(self, two_frag):
        _, frag = two_frag
        # F0 local graph: nodes {a,b,c-virtual}, edges {a->b, b->c}
        assert frag[0].size == 3 + 2
        assert frag[0].num_internal_edges == 1
        assert frag.max_fragment_size == 5
        assert frag.average_fragment_size == 5.0

    def test_fragment_graph(self, two_frag):
        _, frag = two_frag
        gf = frag.fragment_graph()
        # boundary nodes: a (in), c (in), plus sources b, d
        assert set(gf.nodes()) == {"a", "b", "c", "d"}
        assert set(gf.edges()) == {("b", "c"), ("d", "a")}
        assert frag.num_boundary_nodes == 4
        assert frag.num_cross_edges == 2

    def test_fragment_graph_cached(self, two_frag):
        _, frag = two_frag
        assert frag.fragment_graph() is frag.fragment_graph()

    def test_restore_graph(self, two_frag):
        g, frag = two_frag
        assert frag.restore_graph() == g

    def test_iteration_and_len(self, two_frag):
        _, frag = two_frag
        assert len(frag) == 2
        assert [f.fid for f in frag] == [0, 1]

    def test_has_node(self, two_frag):
        _, frag = two_frag
        assert frag.has_node("a")
        assert not frag.has_node("zzz")
        assert frag.num_nodes == 4
