"""Unit tests for MRdRPQ (Section 6)."""

import pytest

from repro.core import bounded_reachable, reachable, regular_reachable
from repro.errors import MapReduceError, QueryError
from repro.graph import erdos_renyi
from repro.mapreduce import MapReduceRuntime, mrd_dist, mrd_reach, mrd_rpq
from repro.workload.paper_example import figure1_graph


class TestMrdRPQ:
    def test_figure1_query(self):
        g = figure1_graph()
        result = mrd_rpq(g, ("Ann", "Mark", "DB* | HR*"), num_mappers=3)
        assert result.answer

    def test_false_query(self):
        g = figure1_graph()
        assert not mrd_rpq(g, ("Ann", "Mark", "DB*"), num_mappers=3).answer

    def test_single_mapper(self):
        g = figure1_graph()
        assert mrd_rpq(g, ("Ann", "Mark", "HR*"), num_mappers=1).answer

    def test_more_mappers_than_nodes(self):
        g = figure1_graph()
        result = mrd_rpq(g, ("Ann", "Mark", "HR*"), num_mappers=50)
        assert result.answer

    def test_agrees_with_centralized_across_mappers(self):
        g = erdos_renyi(40, 120, seed=5, num_labels=3)
        for regex in ["L0* | L1*", ". *", "L2 L0* L1?"]:
            for s, t in [(0, 39), (5, 20), (39, 0)]:
                expected = regular_reachable(g, s, t, regex)
                for k in (1, 3, 7):
                    got = mrd_rpq(g, (s, t, regex), num_mappers=k)
                    assert got.answer == expected, (regex, s, t, k)

    def test_trivial_self_query_runs_no_job(self):
        g = figure1_graph()
        result = mrd_rpq(g, ("Ann", "Ann", "HR*"), num_mappers=3)
        assert result.answer and result.details.get("trivial")
        assert result.stats.num_mappers == 0

    def test_rejects_bad_mapper_count(self):
        g = figure1_graph()
        with pytest.raises(MapReduceError):
            mrd_rpq(g, ("Ann", "Mark", "HR*"), num_mappers=0)

    def test_rejects_unknown_nodes(self):
        g = figure1_graph()
        with pytest.raises(QueryError):
            mrd_rpq(g, ("Ghost", "Mark", "HR*"), num_mappers=2)

    def test_stats_shape(self):
        g = figure1_graph()
        result = mrd_rpq(g, ("Ann", "Mark", "HR*"), num_mappers=3)
        assert result.stats.num_mappers == 3
        assert result.stats.num_reducers == 1
        assert result.stats.ecc_bytes > 0
        assert result.details["num_fragments"] == 3

    def test_custom_runtime_reused(self):
        g = figure1_graph()
        runtime = MapReduceRuntime(bandwidth=1e9)
        a = mrd_rpq(g, ("Ann", "Mark", "HR*"), 2, runtime=runtime)
        b = mrd_rpq(g, ("Ann", "Mark", "DB*"), 2, runtime=runtime)
        assert a.answer and not b.answer


class TestDerivedJobs:
    def test_mrd_reach_equals_reachability(self):
        g = erdos_renyi(30, 70, seed=8, num_labels=2)
        for s, t in [(0, 29), (29, 0), (3, 3), (5, 17)]:
            assert mrd_reach(g, s, t, 4).answer == reachable(g, s, t)

    def test_mrd_dist_equals_bounded(self):
        g = erdos_renyi(25, 60, seed=9, num_labels=2)
        for s, t in [(0, 20), (20, 0), (4, 4)]:
            for bound in (0, 1, 2, 5):
                expected = bounded_reachable(g, s, t, bound)
                assert mrd_dist(g, s, t, bound, 3).answer == expected, (s, t, bound)

    def test_mrd_dist_zero_bound_trivial(self):
        g = figure1_graph()
        assert mrd_dist(g, "Ann", "Ann", 0, 2).answer
        assert not mrd_dist(g, "Ann", "Walt", 0, 2).answer

    def test_mrd_dist_rejects_negative(self):
        g = figure1_graph()
        with pytest.raises(QueryError):
            mrd_dist(g, "Ann", "Walt", -1, 2)
