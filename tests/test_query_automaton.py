"""Unit tests for query automata Gq(R) (Section 5.1)."""


from repro.automata import US, UT, QueryAutomaton
from repro.graph import DiGraph


class TestStructure:
    def test_paper_example6(self):
        """Gq(DB* | HR*) for (Ann, Mark): 4 states; the paper's 6 transitions
        plus the us->ut ε-arc (DB*|HR* is nullable, so a direct Ann->Mark
        recommendation satisfies the query — the paper's figure omits it)."""
        qa = QueryAutomaton.build("DB* | HR*", "Ann", "Mark")
        assert qa.num_states == 4
        labels = {qa.state_label(s) for s in qa.states()}
        assert labels == {"start:Ann", "DB", "HR", "final:Mark"}
        transitions = {
            (qa.state_label(u), qa.state_label(v)) for u, v in qa.transitions()
        }
        assert ("start:Ann", "DB") in transitions
        assert ("DB", "DB") in transitions
        assert ("DB", "final:Mark") in transitions
        assert ("start:Ann", "HR") in transitions
        assert ("HR", "HR") in transitions
        assert ("HR", "final:Mark") in transitions
        assert ("start:Ann", "final:Mark") in transitions  # the ε arc
        assert qa.num_transitions == 7

    def test_paper_example6_prime(self):
        """Gq((CTO DB*) | HR*) for (Walt, Mark): 5 states, 7 transitions."""
        qa = QueryAutomaton.build("(CTO DB*) | HR*", "Walt", "Mark")
        assert qa.num_states == 5
        # ε ∈ L(R') via HR*, so us->ut exists: 7 paper transitions + 1.
        transitions = {
            (qa.state_label(u), qa.state_label(v)) for u, v in qa.transitions()
        }
        assert ("start:Walt", "CTO") in transitions
        assert ("CTO", "DB") in transitions
        assert ("CTO", "final:Mark") in transitions
        assert ("DB", "DB") in transitions

    def test_final_state_has_no_successors(self):
        qa = QueryAutomaton.build("a*", "s", "t")
        assert qa.successors(UT) == ()

    def test_size_counts_states_and_transitions(self):
        qa = QueryAutomaton.build("a | b", "s", "t")
        assert qa.size == qa.num_states + qa.num_transitions


class TestMatching:
    def test_start_matches_source_only(self):
        qa = QueryAutomaton.build("a*", "s", "t")
        assert qa.node_matches("s", "whatever", US)
        assert not qa.node_matches("x", "a", US)

    def test_final_matches_target_only(self):
        qa = QueryAutomaton.build("a*", "s", "t")
        assert qa.node_matches("t", None, UT)
        assert not qa.node_matches("s", None, UT)

    def test_position_matches_by_label(self):
        qa = QueryAutomaton.build("a", "s", "t")
        assert qa.node_matches("n1", "a", 0)
        assert not qa.node_matches("n1", "b", 0)

    def test_wildcard_position_matches_anything(self):
        qa = QueryAutomaton.build(".", "s", "t")
        assert qa.node_matches("n1", "anything", 0)
        assert qa.node_matches("n1", None, 0)

    def test_matching_states(self):
        qa = QueryAutomaton.build("a | b", "s", "t")
        assert set(qa.matching_states("n", "a")) == {0}
        assert set(qa.matching_states("s", "a")) == {US, 0}
        assert set(qa.matching_states("t", "c")) == {UT}

    def test_match_fn_binds_graph_labels(self):
        g = DiGraph.from_edges([("s", "n"), ("n", "t")], labels={"n": "a"})
        qa = QueryAutomaton.build("a", "s", "t")
        matches = qa.match_fn(g)
        assert matches("n", 0)
        assert matches("s", US)
        assert not matches("n", US)


class TestEndToEndSemantics:
    def test_same_source_target_states_differ(self):
        # s == t: us and ut are still distinct states.
        qa = QueryAutomaton.build("a*", "x", "x")
        assert qa.node_matches("x", None, US)
        assert qa.node_matches("x", None, UT)
        assert US != UT

    def test_str_is_readable(self):
        text = str(QueryAutomaton.build("DB* | HR*", "Ann", "Mark"))
        assert "start:Ann" in text and "final:Mark" in text
