"""Tests for the ``python -m repro`` query CLI."""

import pytest

from repro.cli import main
from repro.graph import graph_io
from repro.workload.paper_example import figure1_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.txt"
    graph_io.save(figure1_graph(), path)
    return str(path)


class TestQueries:
    def test_reach_true(self, graph_file, capsys):
        assert main(["--graph", graph_file, "-k", "3", "reach", "Ann", "Mark"]) == 0
        out = capsys.readouterr().out
        assert "->  True" in out
        assert "max-visits/site=1" in out

    def test_reach_false(self, graph_file, capsys):
        main(["--graph", graph_file, "reach", "Mark", "Ann"])
        assert "->  False" in capsys.readouterr().out

    def test_dist(self, graph_file, capsys):
        main(["--graph", graph_file, "dist", "Ann", "Mark", "6"])
        out = capsys.readouterr().out
        assert "->  True" in out and "distance: 6" in out

    def test_regular(self, graph_file, capsys):
        main(["--graph", graph_file, "regular", "Ann", "Mark", "DB* | HR*"])
        assert "->  True" in capsys.readouterr().out

    def test_algorithm_choice(self, graph_file, capsys):
        main(["--graph", graph_file, "--algorithm", "disReachn",
              "reach", "Ann", "Mark"])
        assert "[disReachn]" in capsys.readouterr().out

    def test_verbose(self, graph_file, capsys):
        main(["--graph", graph_file, "-v", "reach", "Ann", "Mark"])
        out = capsys.readouterr().out
        assert "visits per site" in out and "disReachm" in out

    def test_dataset_source(self, capsys):
        code = main(["--dataset", "amazon", "--scale", "0.001",
                     "reach", "0", "10"])
        assert code == 0
        assert "qr(0, 10)" in capsys.readouterr().out


class TestErrors:
    def test_unknown_node(self, graph_file, capsys):
        assert main(["--graph", graph_file, "reach", "Ann", "Nobody"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_regex(self, graph_file, capsys):
        assert main(["--graph", graph_file, "regular", "Ann", "Mark", "(("]) == 2

    def test_bad_algorithm(self, graph_file, capsys):
        assert main(["--graph", graph_file, "--algorithm", "nope",
                     "reach", "Ann", "Mark"]) == 2

    def test_query_type_mismatch(self, graph_file, capsys):
        assert main(["--graph", graph_file, "--algorithm", "disRPQ",
                     "reach", "Ann", "Mark"]) == 2
