"""Tests for the ``python -m repro`` query CLI."""

import pytest

from repro.cli import main
from repro.graph import graph_io
from repro.workload.paper_example import figure1_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.txt"
    graph_io.save(figure1_graph(), path)
    return str(path)


class TestQueries:
    def test_reach_true(self, graph_file, capsys):
        assert main(["--graph", graph_file, "-k", "3", "reach", "Ann", "Mark"]) == 0
        out = capsys.readouterr().out
        assert "->  True" in out
        assert "max-visits/site=1" in out

    def test_reach_false(self, graph_file, capsys):
        main(["--graph", graph_file, "reach", "Mark", "Ann"])
        assert "->  False" in capsys.readouterr().out

    def test_dist(self, graph_file, capsys):
        main(["--graph", graph_file, "dist", "Ann", "Mark", "6"])
        out = capsys.readouterr().out
        assert "->  True" in out and "distance: 6" in out

    def test_regular(self, graph_file, capsys):
        main(["--graph", graph_file, "regular", "Ann", "Mark", "DB* | HR*"])
        assert "->  True" in capsys.readouterr().out

    def test_algorithm_choice(self, graph_file, capsys):
        main(["--graph", graph_file, "--algorithm", "disReachn",
              "reach", "Ann", "Mark"])
        assert "[disReachn]" in capsys.readouterr().out

    def test_verbose(self, graph_file, capsys):
        main(["--graph", graph_file, "-v", "reach", "Ann", "Mark"])
        out = capsys.readouterr().out
        assert "visits per site" in out and "disReachm" in out

    def test_dataset_source(self, capsys):
        code = main(["--dataset", "amazon", "--scale", "0.001",
                     "reach", "0", "10"])
        assert code == 0
        assert "qr(0, 10)" in capsys.readouterr().out

    def test_kernel_flag_preserves_answer_and_stats(self, graph_file, capsys):
        import re

        from repro.core.kernels import set_default_kernel

        def normalized(argv):
            assert main(argv) == 0
            # the kernel may only change measured times, never the modeled line
            return re.sub(r"response=[0-9.]*ms", "", capsys.readouterr().out)

        reference = normalized(["--graph", graph_file, "reach", "Ann", "Mark"])
        try:
            got = normalized(
                ["--graph", graph_file, "--kernel", "numpy", "reach", "Ann", "Mark"]
            )
        finally:
            set_default_kernel(None)  # --kernel sets the process-wide default
        assert got == reference


class TestErrors:
    def test_unknown_node(self, graph_file, capsys):
        assert main(["--graph", graph_file, "reach", "Ann", "Nobody"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_regex(self, graph_file, capsys):
        assert main(["--graph", graph_file, "regular", "Ann", "Mark", "(("]) == 2

    def test_bad_algorithm(self, graph_file, capsys):
        assert main(["--graph", graph_file, "--algorithm", "nope",
                     "reach", "Ann", "Mark"]) == 2

    def test_query_type_mismatch(self, graph_file, capsys):
        assert main(["--graph", graph_file, "--algorithm", "disRPQ",
                     "reach", "Ann", "Mark"]) == 2


class TestWorkloadCli:
    def test_workload_batch_summary(self, graph_file, capsys):
        code = main(["--graph", graph_file, "-k", "3", "--workload", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: 20 queries" in out
        assert "hit-rate=" in out and "speedup=" in out

    def test_workload_verbose_lists_queries(self, graph_file, capsys):
        main(["--graph", graph_file, "--workload", "6", "--verbose"])
        out = capsys.readouterr().out
        assert out.count("->") >= 6

    def test_workload_options_forwarded(self, graph_file, capsys):
        code = main(
            ["--graph", graph_file, "--workload", "10", "--distinct", "3",
             "--zipf", "1.5", "--workload-bound", "4"]
        )
        assert code == 0
        assert "(3 distinct, zipf s=1.5)" in capsys.readouterr().out

    def test_requires_query_or_workload(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["--graph", graph_file])
        assert "or --workload" in capsys.readouterr().err

    def test_rejects_both_query_and_workload(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["--graph", graph_file, "--workload", "5", "reach", "Ann", "Mark"])
        assert "give one or the other" in capsys.readouterr().err

    def test_workload_honors_algorithm_baseline(self, graph_file, capsys):
        code = main(
            ["--graph", graph_file, "--workload", "8", "--algorithm", "disReachn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "via disReachn" in out
        assert "unbatched=8" in out

    def test_workload_honors_batchable_algorithm(self, graph_file, capsys):
        code = main(
            ["--graph", graph_file, "--workload", "8", "--algorithm", "disDist"]
        )
        assert code == 0
        assert "unbatched" not in capsys.readouterr().out

    def test_workload_unknown_algorithm_errors(self, graph_file, capsys):
        assert main(
            ["--graph", graph_file, "--workload", "5", "--algorithm", "nope"]
        ) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestDynamicWorkload:
    def test_workload_with_mutations(self, capsys):
        code = main([
            "--dataset", "amazon", "--scale", "0.003", "-k", "4",
            "--workload", "24", "--mutations", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "24 queries + 12 mutations" in out
        assert "[dynamic] |Vf|" in out
        assert "refinements=" in out
        assert "epoch=" in out

    def test_mutations_requires_workload(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["--graph", graph_file, "--mutations", "5",
                  "reach", "Ann", "Mark"])
        assert "--workload" in capsys.readouterr().err

    def test_negative_mutations_rejected(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["--graph", graph_file, "--workload", "5", "--mutations", "-1"])
        assert "non-negative" in capsys.readouterr().err
