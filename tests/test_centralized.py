"""Unit tests for the centralized reference algorithms."""

import pytest

from repro.core import (
    BoundedReachQuery,
    ReachQuery,
    RegularReachQuery,
    bounded_reachable,
    distance,
    evaluate_centralized,
    reachable,
    regular_reachable,
)
from repro.errors import QueryError
from repro.graph import DiGraph


class TestReachable:
    def test_basic(self, diamond):
        assert reachable(diamond, "a", "d")
        assert not reachable(diamond, "d", "a")
        assert reachable(diamond, "b", "b")

    def test_unknown_nodes_raise(self, diamond):
        with pytest.raises(QueryError):
            reachable(diamond, "zzz", "a")
        with pytest.raises(QueryError):
            reachable(diamond, "a", "zzz")


class TestDistance:
    def test_values(self, chain_graph):
        assert distance(chain_graph, 0, 0) == 0
        assert distance(chain_graph, 0, 9) == 9
        assert distance(chain_graph, 9, 0) is None


class TestBoundedReachable:
    def test_boundary_inclusive(self, chain_graph):
        assert bounded_reachable(chain_graph, 0, 5, 5)
        assert not bounded_reachable(chain_graph, 0, 5, 4)

    def test_zero_bound(self, chain_graph):
        assert bounded_reachable(chain_graph, 3, 3, 0)
        assert not bounded_reachable(chain_graph, 3, 4, 0)

    def test_rejects_negative(self, chain_graph):
        with pytest.raises(QueryError):
            bounded_reachable(chain_graph, 0, 1, -1)


class TestRegularReachable:
    def test_labels_exclude_endpoints(self, chain_graph):
        # path 0..3: intermediates are 1 (B) and 2 (A)
        assert regular_reachable(chain_graph, 0, 3, "B A")
        assert not regular_reachable(chain_graph, 0, 3, "A B")

    def test_direct_edge_needs_nullable(self, chain_graph):
        assert regular_reachable(chain_graph, 0, 1, "()")
        assert regular_reachable(chain_graph, 0, 1, "A*")
        assert not regular_reachable(chain_graph, 0, 1, "A")

    def test_source_equals_target_nullable(self, chain_graph):
        assert regular_reachable(chain_graph, 0, 0, "Z*")

    def test_source_equals_target_via_cycle(self, cycle_graph):
        for node in (0, 1, 2, 3):
            cycle_graph.set_label(node, "X")
        # non-nullable regex, but a real cycle 0->1->2->0 with 2 intermediates
        assert regular_reachable(cycle_graph, 0, 0, "X X")
        assert not regular_reachable(cycle_graph, 3, 3, "X X")

    def test_wildcard_star_equals_plain_reachability(self, diamond):
        for s in diamond.nodes():
            for t in diamond.nodes():
                assert regular_reachable(diamond, s, t, ". *") == reachable(
                    diamond, s, t
                )

    def test_nonsimple_paths_allowed(self):
        # s -> a -> b -> a -> t needs revisiting node a; the paper allows it.
        g = DiGraph.from_edges(
            [("s", "a"), ("a", "b"), ("b", "a"), ("a", "t")],
            labels={"a": "X", "b": "Y"},
        )
        assert regular_reachable(g, "s", "t", "X Y X")

    def test_accepts_prebuilt_automaton(self, diamond):
        from repro.automata import QueryAutomaton

        automaton = QueryAutomaton.build("HR | DB", "a", "d")
        assert regular_reachable(diamond, "a", "d", automaton)

    def test_rejects_mismatched_automaton(self, diamond):
        from repro.automata import QueryAutomaton

        automaton = QueryAutomaton.build("HR", "x", "y")
        with pytest.raises(QueryError):
            regular_reachable(diamond, "a", "d", automaton)


class TestDispatch:
    def test_all_three_query_types(self, diamond):
        assert evaluate_centralized(diamond, ReachQuery("a", "d"))
        assert evaluate_centralized(diamond, BoundedReachQuery("a", "d", 2))
        assert evaluate_centralized(diamond, RegularReachQuery("a", "d", "HR | DB"))

    def test_rejects_unknown_type(self, diamond):
        with pytest.raises(QueryError):
            evaluate_centralized(diamond, "not a query")
