"""Fig. 11(c): disReach vs disReachm on the large synthetic graph.

Paper: 36M nodes / 360M edges, card(F) from 10 to 20.  Scaled 1/2000 here
(18k nodes / 180k edges).  Expected: disReach flat-to-decreasing with
card(F); disReachm increasing.
"""

import pytest

from conftest import bench_workload, cluster_for, reach_queries, synthetic_key

CARDS = [10, 14, 20]
ALGORITHMS = ["disReach", "disReachm"]
KEY = synthetic_key(18_000, 180_000)


@pytest.mark.parametrize("card", CARDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11c(benchmark, card, algorithm):
    cluster = cluster_for(KEY, card)
    queries = reach_queries(KEY, count=2, seed=0)
    benchmark.group = f"fig11c:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm, rounds=1)
