"""Fig. 11(e): RPQ response time on the four labeled datasets.

Queries of complexity (|Vq|, |Eq|, |Lq|) = (8, 16, 8); card(F) as in the
paper's table (10/11/12/10).  Expected: disRPQ < disRPQd < disRPQn.
"""

import pytest

from conftest import bench_workload, cluster_for, dataset_key, regular_queries
from repro.workload import DATASETS

NAMES = ["youtube", "meme", "citation", "internet"]
ALGORITHMS = ["disRPQ", "disRPQn", "disRPQd"]


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11e(benchmark, name, algorithm):
    key = dataset_key(name)
    cluster = cluster_for(key, DATASETS[name].paper_fragments or 10)
    queries = regular_queries(key, count=2, seed=0)
    benchmark.group = f"fig11e:{name}"
    bench_workload(benchmark, cluster, queries, algorithm)
    benchmark.extra_info["dataset"] = name
