"""Fig. 11(a): reachability time vs card(F) on the LiveJournal analog.

Expected shape: disReach and disReachn get *faster* as card(F) grows
(smaller fragments to evaluate/ship); disReachm gets *slower* (more
cross-fragment activations through the master).
"""

import pytest

from conftest import bench_workload, cluster_for, dataset_key, reach_queries

CARDS = [2, 8, 14, 20]
ALGORITHMS = ["disReach", "disReachn", "disReachm"]


@pytest.mark.parametrize("card", CARDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11a(benchmark, card, algorithm):
    key = dataset_key("livejournal", 0.001)
    cluster = cluster_for(key, card)
    queries = reach_queries(key, count=3, seed=0)
    benchmark.group = f"fig11a:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
