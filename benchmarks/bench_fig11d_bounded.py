"""Fig. 11(d): disDist vs disDistn on the WikiTalk analog, l = 10.

Expected shape: both fall as card(F) grows (the paper's main trend).
"""

import pytest

from conftest import bench_workload, bounded_queries, cluster_for, dataset_key

CARDS = [2, 8, 14, 20]
ALGORITHMS = ["disDist", "disDistn"]


@pytest.mark.parametrize("card", CARDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11d(benchmark, card, algorithm):
    key = dataset_key("wikitalk")
    cluster = cluster_for(key, card)
    queries = bounded_queries(key, count=3, bound=10, seed=0)
    benchmark.group = f"fig11d:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
