"""Fig. 11(b): reachability time vs size(F), card(F) = 8 (synthetic).

Expected shape: every algorithm slows as fragments grow; disReach is the
least sensitive (its per-site work is one linear sweep of the fragment).
"""

import pytest

from conftest import bench_workload, cluster_for, reach_queries, synthetic_key

# The paper's size(F) ticks, scaled: |G| = size_F * card * scale.
SIZE_TICKS = [35_000, 155_000, 315_000]
CARD = 8
SCALE = 0.002
ALGORITHMS = ["disReach", "disReachn", "disReachm"]


def _key(size_f: int):
    total = int(size_f * CARD * SCALE)
    num_nodes = max(int(total / 2.4), 50)
    return synthetic_key(num_nodes, max(total - num_nodes, num_nodes))


@pytest.mark.parametrize("size_f", SIZE_TICKS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11b(benchmark, size_f, algorithm):
    key = _key(size_f)
    cluster = cluster_for(key, CARD)
    queries = reach_queries(key, count=3, seed=0)
    benchmark.group = f"fig11b:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
    benchmark.extra_info["size_F"] = size_f
