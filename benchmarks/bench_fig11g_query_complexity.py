"""Fig. 11(g): RPQ time vs query complexity (|Vq|, |Eq|) on Youtube.

|Lq| fixed at 8; (|Vq|, |Eq|) swept from (4, 8) to (18, 36).  Expected:
all algorithms grow with complexity; disRPQn is the most sensitive.
"""

import pytest

from conftest import bench_workload, cluster_for, dataset_key, regular_queries

COMPLEXITIES = [(4, 8), (10, 20), (18, 36)]
ALGORITHMS = ["disRPQ", "disRPQn", "disRPQd"]
CARD = 12  # the paper's card(F) for Youtube


@pytest.mark.parametrize("complexity", COMPLEXITIES, ids=lambda c: f"Vq{c[0]}-Eq{c[1]}")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11g(benchmark, complexity, algorithm):
    num_states, num_transitions = complexity
    key = dataset_key("youtube")
    cluster = cluster_for(key, CARD)
    queries = regular_queries(
        key, count=2, num_states=num_states, num_transitions=num_transitions, seed=0
    )
    benchmark.group = f"fig11g:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
    benchmark.extra_info["Vq"] = num_states
    benchmark.extra_info["Eq"] = num_transitions
