"""Ablation (Section 3 remark): the local reachability engine of localEval.

Compares the default shared bitmask sweep against per-question oracles
(BFS, transitive-closure matrix, GRAIL, 2-hop) on the Amazon analog.
Index build cost is included (worst case: build per query) — the point of
the paper's remark is that the framework is agnostic to this choice.
"""

import pytest

from conftest import cluster_for, dataset_key, reach_queries
from repro.core.reachability import dis_reach
from repro.index import REACHABILITY_INDEXES

ENGINES = ["sweep"] + sorted(REACHABILITY_INDEXES)


@pytest.mark.parametrize("engine", ENGINES)
def test_ablation_index(benchmark, engine):
    key = dataset_key("amazon", 0.005)
    cluster = cluster_for(key, 4)
    queries = reach_queries(key, count=3, seed=0)
    factory = None if engine == "sweep" else REACHABILITY_INDEXES[engine]

    def run():
        return [dis_reach(cluster, q, oracle_factory=factory).answer for q in queries]

    benchmark.group = "ablation:index"
    answers = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["answers"] = "".join("T" if a else "F" for a in answers)
