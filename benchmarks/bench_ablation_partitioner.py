"""Ablation: partition quality vs disReach cost.

Theorem 1's bounds are in terms of |Vf|, which the partitioner controls.
This bench quantifies the constants: locality-preserving partitioners
(chunk, bfs) versus placement-oblivious ones (random, hash) on the Amazon
analog — per-node random placement shows the O(|Vf|^2) worst case the
paper's "no constraints on fragmentation" generality admits.
"""

import pytest

from conftest import dataset_key, graph_of, reach_queries
from repro.bench.harness import run_workload
from repro.distributed import SimulatedCluster
from repro.partition import PARTITIONERS

CARD = 8


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
def test_ablation_partitioner(benchmark, partitioner):
    key = dataset_key("amazon", 0.005)
    graph = graph_of(key)
    cluster = SimulatedCluster.from_graph(graph, CARD, partitioner=partitioner, seed=0)
    queries = reach_queries(key, count=3, seed=0)

    def run():
        return run_workload(cluster, queries, "disReach")

    benchmark.group = "ablation:partitioner"
    metrics = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "partitioner": partitioner,
            "Vf": cluster.fragmentation.num_boundary_nodes,
            "cross_edges": cluster.fragmentation.num_cross_edges,
            "response_ms": round(metrics.mean_response_seconds * 1e3, 3),
            "traffic_bytes": round(metrics.mean_traffic_bytes),
        }
    )
