"""Shared helpers for the per-figure pytest benchmarks.

Benchmarks mirror the experiments of Section 7 at reduced scale (see
DESIGN.md §4): each parametrized case is one datapoint of one table/figure.
Graphs and clusters are cached per session; every benchmark records the
paper's non-time metrics (traffic, visits, answers) in ``extra_info`` so a
single ``pytest benchmarks/ --benchmark-only`` regenerates both axes of
every figure.
"""

from __future__ import annotations

import functools
from typing import Sequence

import pytest

from repro.bench.harness import run_workload
from repro.core.engine import evaluate
from repro.distributed import SimulatedCluster
from repro.graph import DiGraph, synthetic_graph
from repro.workload import (
    load_dataset,
    random_bounded_queries,
    random_reach_queries,
    random_regular_queries,
)

#: Benchmark-wide scale relative to the paper's graph sizes.
BENCH_SCALE = 0.002


@functools.lru_cache(maxsize=None)
def dataset(name: str, scale: float = BENCH_SCALE, seed: int = 0) -> DiGraph:
    return load_dataset(name, scale=scale, seed=seed)


@functools.lru_cache(maxsize=None)
def synthetic(num_nodes: int, num_edges: int, num_labels: int = 0, seed: int = 0) -> DiGraph:
    return synthetic_graph(num_nodes, num_edges, num_labels=num_labels, seed=seed)


@functools.lru_cache(maxsize=None)
def cluster_for(graph_key, card: int, partitioner: str = "chunk") -> SimulatedCluster:
    kind, args = graph_key
    graph = dataset(*args) if kind == "dataset" else synthetic(*args)
    return SimulatedCluster.from_graph(graph, card, partitioner=partitioner)


def dataset_key(name: str, scale: float = BENCH_SCALE, seed: int = 0):
    return ("dataset", (name, scale, seed))


def synthetic_key(num_nodes: int, num_edges: int, num_labels: int = 0, seed: int = 0):
    return ("synthetic", (num_nodes, num_edges, num_labels, seed))


def graph_of(graph_key) -> DiGraph:
    kind, args = graph_key
    return dataset(*args) if kind == "dataset" else synthetic(*args)


def reach_queries(graph_key, count: int = 3, seed: int = 0):
    return random_reach_queries(graph_of(graph_key), count, seed=seed)


def bounded_queries(graph_key, count: int = 3, bound: int = 10, seed: int = 0):
    return random_bounded_queries(graph_of(graph_key), count, bound=bound, seed=seed)


def regular_queries(
    graph_key, count: int = 2, num_states: int = 8, num_transitions: int = 16,
    num_labels: int = 8, seed: int = 0,
):
    return random_regular_queries(
        graph_of(graph_key), count, num_states=num_states,
        num_transitions=num_transitions, num_labels=num_labels, seed=seed,
    )


def bench_workload(
    benchmark,
    cluster: SimulatedCluster,
    queries: Sequence,
    algorithm: str,
    rounds: int = 2,
) -> None:
    """Benchmark one (cluster, workload, algorithm) cell.

    Times the full workload evaluation; afterwards records the mean
    simulated response time, traffic, and visit counts in ``extra_info``.
    """

    def run():
        return [evaluate(cluster, query, algorithm) for query in queries]

    benchmark.pedantic(run, rounds=rounds, iterations=1, warmup_rounds=0)
    metrics = run_workload(cluster, queries, algorithm)
    benchmark.extra_info.update(
        {
            "algorithm": algorithm,
            "response_ms": round(metrics.mean_response_seconds * 1e3, 3),
            "traffic_bytes": round(metrics.mean_traffic_bytes),
            "max_visits_per_site": metrics.max_visits_per_site,
            "total_visits": metrics.total_visits,
            "positive_fraction": metrics.positive_fraction,
            "num_queries": metrics.num_queries,
            "card": cluster.num_sites,
            "Vf": cluster.fragmentation.num_boundary_nodes,
            "Fm": cluster.fragmentation.max_fragment_size,
        }
    )
