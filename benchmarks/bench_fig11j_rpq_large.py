"""Fig. 11(j): disRPQ vs disRPQd on the large synthetic graph (|L| = 50).

Paper: 36M nodes / 360M edges, card(F) in 10..20; scaled 1/2000 here.
Expected: both improve with card(F); disRPQ consistently below disRPQd.
"""

import pytest

from conftest import bench_workload, cluster_for, regular_queries, synthetic_key

CARDS = [10, 14, 20]
ALGORITHMS = ["disRPQ", "disRPQd"]
KEY = synthetic_key(18_000, 180_000, 50)


@pytest.mark.parametrize("card", CARDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11j(benchmark, card, algorithm):
    cluster = cluster_for(KEY, card)
    queries = regular_queries(KEY, count=2, seed=0)
    benchmark.group = f"fig11j:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm, rounds=1)
