"""Fig. 11(i): RPQ time vs card(F) (paper: 1.2M nodes / 4.8M edges).

Expected: disRPQ improves with card(F) (75% less time at 20 vs 6 in the
paper); disRPQd and disRPQn improve too but stay above it.
"""

import pytest

from conftest import bench_workload, cluster_for, regular_queries, synthetic_key

CARDS = [6, 12, 20]
ALGORITHMS = ["disRPQ", "disRPQn", "disRPQd"]
KEY = synthetic_key(6_000, 24_000, 8)  # 1/200 of the paper's graph


@pytest.mark.parametrize("card", CARDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11i(benchmark, card, algorithm):
    cluster = cluster_for(KEY, card)
    queries = regular_queries(KEY, count=2, seed=0)
    benchmark.group = f"fig11i:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
