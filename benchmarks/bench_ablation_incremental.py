"""Ablation: standing (incremental) queries vs one-shot re-evaluation.

The paper's future-work direction, quantified: after an intra-fragment edge
update, an incremental session re-evaluates one fragment (1 visit) versus
disReach's full pass over every site.  The gap is the point of combining
partial evaluation with incrementality.
"""

import random

import pytest

from conftest import dataset_key, graph_of
from repro.core.incremental import IncrementalReachSession
from repro.core.reachability import dis_reach
from repro.distributed import SimulatedCluster

CARD = 8


def _setup():
    graph = graph_of(dataset_key("amazon", 0.005))
    cluster = SimulatedCluster.from_graph(graph, CARD, partitioner="chunk")
    nodes = sorted(graph.nodes())
    source, target = nodes[0], nodes[-1]
    placement = cluster.fragmentation.placement
    rng = random.Random(7)
    flips = []
    while len(flips) < 6:
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v and placement[u] == placement[v] and not graph.has_edge(u, v):
            flips.append((u, v))
    return cluster, source, target, flips


@pytest.mark.parametrize("mode", ["incremental", "full-reevaluation"])
def test_ablation_incremental(benchmark, mode):
    cluster, source, target, flips = _setup()
    session = IncrementalReachSession(cluster, (source, target))
    session.initialize()

    if mode == "incremental":

        def run():
            visits = 0
            for u, v in flips:
                visits += session.add_edge(u, v).stats.total_visits
            for u, v in flips:
                visits += session.remove_edge(u, v).stats.total_visits
            return visits

    else:

        def run():
            visits = 0
            for u, v in flips:
                frag = cluster.fragmentation.fragment_of(u)
                frag.local_graph.add_edge(u, v)
                visits += dis_reach(cluster, (source, target)).stats.total_visits
            for u, v in flips:
                frag = cluster.fragmentation.fragment_of(u)
                frag.local_graph.remove_edge(u, v)
                visits += dis_reach(cluster, (source, target)).stats.total_visits
            return visits

    benchmark.group = "ablation:incremental"
    visits = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {"mode": mode, "updates": 2 * len(flips), "total_visits": visits}
    )
