"""Fig. 11(h): RPQ time vs size(F), card(F) = 10 (synthetic, |L| = 8).

Expected: all grow with size(F); disRPQ scales best (16s at 1.5M nodes in
the paper's full-scale run).
"""

import pytest

from conftest import bench_workload, cluster_for, regular_queries, synthetic_key

SIZE_TICKS = [35_000, 155_000, 315_000]
CARD = 10
SCALE = 0.002
ALGORITHMS = ["disRPQ", "disRPQn", "disRPQd"]


def _key(size_f: int):
    total = int(size_f * CARD * SCALE)
    num_nodes = max(int(total / 2.4), 50)
    return synthetic_key(num_nodes, max(total - num_nodes, num_nodes), 8)


@pytest.mark.parametrize("size_f", SIZE_TICKS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11h(benchmark, size_f, algorithm):
    key = _key(size_f)
    cluster = cluster_for(key, CARD)
    queries = regular_queries(key, count=2, seed=0)
    benchmark.group = f"fig11h:{algorithm}"
    bench_workload(benchmark, cluster, queries, algorithm)
    benchmark.extra_info["size_F"] = size_f
