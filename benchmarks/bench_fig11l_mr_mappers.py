"""Fig. 11(l): MRdRPQ time vs number of mappers for Q1..Q4 (Youtube analog).

Expected: response falls as mappers grow (the paper reports ~50% less time
for Q1 at 30 mappers vs 5).
"""

import pytest

from conftest import dataset_key, graph_of, regular_queries
from repro.mapreduce import MapReduceRuntime, mrd_rpq

MAPPER_COUNTS = [5, 15, 30]
QUERIES = {"Q1": (4, 6, 8), "Q2": (6, 8, 8), "Q3": (10, 12, 8), "Q4": (12, 14, 8)}
KEY = dataset_key("youtube", 0.005)


@pytest.mark.parametrize("mappers", MAPPER_COUNTS)
@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_fig11l(benchmark, mappers, qname):
    num_states, num_transitions, num_labels = QUERIES[qname]
    graph = graph_of(KEY)
    queries = regular_queries(
        KEY, count=2, num_states=num_states,
        num_transitions=num_transitions, num_labels=num_labels, seed=0,
    )
    runtime = MapReduceRuntime()

    def run():
        return [mrd_rpq(graph, q, mappers, runtime=runtime) for q in queries]

    benchmark.group = f"fig11l:{qname}"
    results = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "mappers": mappers,
            "query": qname,
            "response_ms": round(
                sum(r.stats.response_seconds for r in results) / len(results) * 1e3, 3
            ),
        }
    )
