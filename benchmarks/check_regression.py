#!/usr/bin/env python3
"""CI benchmark-regression gate: compare a bench run against the baseline.

Usage::

    python -m repro.bench workload --queries 100 --seed 0 --json BENCH_pr.json
    python benchmarks/check_regression.py BENCH_pr.json benchmarks/baseline.json

Two kinds of checks, both on the ``workload`` experiment's rows:

* **cost metrics vs. baseline** — ``traffic_KB``, ``network_ms`` and
  ``visits`` of both the ``one-by-one`` and ``batch`` rows.  These are
  *modeled* quantities (byte sizes, latency rounds, visit counts under the
  simulator's deterministic cost model), so they are bit-reproducible
  across machines; the gate fails when any grows more than ``--tolerance``
  (default 25%) over the committed baseline.  Timing columns
  (``response_ms``, ``wall_ms``) are measured and therefore reported but
  never compared.
* **absolute serving floors** — the batch row must keep ``hit_rate >= 0.5``
  and modeled ``speedup >= 1.5`` on the pinned 100-query zipf workload
  (the acceptance bar of the serving layer).

Exit status 0 = pass, 1 = regression, 2 = bad input.  When the run is
*better* than baseline by more than the tolerance the gate still passes but
suggests refreshing ``benchmarks/baseline.json``.  A Markdown summary is
appended to ``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: Deterministic modeled costs (lower is better), compared per row mode.
COST_METRICS = ("traffic_KB", "network_ms", "visits")
#: Absolute floors on the batch row (higher is better).
FLOORS = {"hit_rate": 0.5, "speedup": 1.5}
EXPERIMENT = "workload"


def load_rows(path: Path) -> Dict[str, Dict[str, object]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    experiment = payload.get(EXPERIMENT)
    if not experiment or "rows" not in experiment:
        raise SystemExit(
            f"error: {path} has no {EXPERIMENT!r} experiment; run "
            f"`python -m repro.bench {EXPERIMENT} --json {path}`"
        )
    return {str(row.get("mode")): row for row in experiment["rows"]}


def as_float(row: Dict[str, object], metric: str, path: str) -> float:
    value = row.get(metric)
    if not isinstance(value, (int, float)):
        raise SystemExit(f"error: {path} row {row.get('mode')!r} lacks {metric!r}")
    return float(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="bench JSON of this run")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative cost growth before failing (default: 0.25)",
    )
    args = parser.parse_args(argv)

    current_rows = load_rows(args.current)
    baseline_rows = load_rows(args.baseline)

    failures: List[str] = []
    improvements: List[str] = []
    report: List[str] = [
        "| row | metric | baseline | current | limit | status |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]

    for mode in ("one-by-one", "batch"):
        base_row = baseline_rows.get(mode)
        cur_row = current_rows.get(mode)
        if base_row is None or cur_row is None:
            failures.append(f"row {mode!r} missing from baseline or current run")
            continue
        for metric in COST_METRICS:
            base = as_float(base_row, metric, str(args.baseline))
            cur = as_float(cur_row, metric, str(args.current))
            limit = base * (1.0 + args.tolerance)
            if cur > limit:
                status = "FAIL"
                failures.append(
                    f"{mode}/{metric}: {cur:g} exceeds baseline {base:g} "
                    f"by more than {args.tolerance:.0%} (limit {limit:g})"
                )
            else:
                status = "ok"
                if base > 0 and cur < base * (1.0 - args.tolerance):
                    improvements.append(
                        f"{mode}/{metric}: {cur:g} is >{args.tolerance:.0%} below "
                        f"baseline {base:g}"
                    )
            report.append(
                f"| {mode} | {metric} | {base:g} | {cur:g} | {limit:g} | {status} |"
            )

    batch_row = current_rows.get("batch")
    if batch_row is not None:
        for metric, floor in FLOORS.items():
            value = as_float(batch_row, metric, str(args.current))
            if value < floor:
                status = "FAIL"
                failures.append(f"batch/{metric}: {value:g} is below the floor {floor:g}")
            else:
                status = "ok"
            report.append(
                f"| batch | {metric} (floor) | >= {floor:g} | {value:g} | - | {status} |"
            )

    print("benchmark regression check:", args.current, "vs", args.baseline)
    print("\n".join(report))
    if improvements:
        print(
            "improvement beyond tolerance — consider refreshing "
            "benchmarks/baseline.json:"
        )
        for line in improvements:
            print(f"  {line}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        verdict = "regression detected" if failures else "no regression"
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(f"### Benchmark regression gate — {verdict}\n\n")
            fh.write("\n".join(report) + "\n")
    if failures:
        print("REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("ok: within tolerance and above serving floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
