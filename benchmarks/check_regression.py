#!/usr/bin/env python3
"""CI benchmark-regression gate: compare bench runs against the baseline.

Usage::

    python -m repro.bench workload --queries 100 --seed 0 --json BENCH_pr.json
    python -m repro.bench partition --seed 0 --json BENCH_partition.json
    python benchmarks/check_regression.py BENCH_pr.json BENCH_partition.json \
        benchmarks/baseline.json

The last path is the committed baseline; every preceding path is a bench
JSON of the current run (their experiments are merged, so the pinned
workload and the partition sweep may come from separate invocations).

Three kinds of checks:

* **workload cost metrics vs. baseline** — ``traffic_KB``, ``network_ms``
  and ``visits`` of both the ``one-by-one`` and ``batch`` rows.  These are
  *modeled* quantities (byte sizes, latency rounds, visit counts under the
  simulator's deterministic cost model), so they are bit-reproducible
  across machines; the gate fails when any grows more than ``--tolerance``
  (default 25%) over the committed baseline.  Timing columns
  (``response_ms``, ``wall_ms``) are measured and therefore reported but
  never compared.
* **workload serving floors** — the batch row must keep ``hit_rate >= 0.5``
  and modeled ``speedup >= 1.5`` on the pinned 100-query zipf workload
  (the acceptance bar of the serving layer).
* **partition quality** (when the baseline carries a ``partition``
  experiment) — the boundary-aware partitioners must not regress: every
  ``refined``/``multilevel`` row's boundary-node count ``Vf`` must stay at
  or below the committed baseline's (``Vf`` is fully deterministic, so the
  ceiling is exact), and ``refined`` must beat ``hash`` on *both* ``Vf``
  and modeled ``traffic_KB`` (disReach rows) on at least
  ``MIN_REFINED_WINS`` pinned datasets — the acceptance bar of the
  partition-quality subsystem.
* **dynamic graphs** (when the baseline carries a ``mutation``
  experiment) — the drift-triggered streaming refinement must hold its
  declared envelope on the pinned mutation run: the ``drift-refine``
  scenario fired at least one refinement, applied at most
  ``refinements * budget`` moves, and kept the final boundary count within
  the declared ``vf_tol`` factor of an offline ``refined`` run on the
  final graph (all three are deterministic).  The scenarios' modeled
  ``traffic_KB``/``network_ms``/``visits`` are additionally
  tolerance-compared against the baseline, like the workload rows.  When
  the run carries ``sessions-S`` sweep rows (``bench mutation --sessions``),
  the batched session remap must demonstrably dedupe: at every S >= 4,
  ``remap_visits_saved > 0`` and the batched ``remap_visits`` stay
  strictly below ``S x`` the single-session remap cost (all
  deterministic).
* **baseline cross-backend identity** (when the baseline carries a
  ``baselines`` experiment) — the sharded Pregel/message-passing
  baselines' modeled stats (answers, visits, traffic, message counts,
  supersteps) must be bit-identical across the sequential/thread/process
  rows of the current run, and identical to the committed baseline's
  sequential row (everything is deterministic, so both checks are exact).
* **real-graph harness** (when the baseline carries a ``snap``
  experiment) — the offline fixture sweep (``bench snap --fixture``) must
  hold the Theorem 1–2 envelope on every static cell (``env_ok == 1``),
  keep answers identical across partitioners/backends/kernels, keep
  ``refined`` at-or-below ``hash`` on both ``|Vf|`` and modeled disReach
  traffic per dataset, and keep every edge-arrival ``replay`` row
  bit-identical to its static prefix load (``replay_match == 1``) with at
  least one drift-triggered refinement on the monitor row.  ``Vf`` and
  answers are additionally exact against the committed baseline, the
  modeled cost columns tolerance-compared, and a baseline cell missing
  from the current run fails (skips must never pass silently in CI).
* **kernel identity + speedup floor** (when the baseline carries a
  ``kernels`` experiment) — every local-evaluation kernel's ``evaluate``
  rows must carry modeled stats bit-identical to the run's own
  python/sequential reference on every backend (exact; python and numpy
  legs are required, numba is optional), the python/sequential rows must
  match the committed baseline's, and the pinned amazon ``jobs`` row must
  keep the numpy kernel's wall-clock ``speedup`` at or above
  ``KERNEL_SPEEDUP_FLOOR`` (the one *measured* gate — CPU-time sums with
  a generous margin below the typically observed ratio).
* **shortcut superstep cuts** (when the baseline carries a ``shortcuts``
  experiment) — the hopset/reach precompute must keep paying on the
  pinned high-diameter datasets: every baseline cell must be present in
  the current run, every non-skip row must carry ``status == "ok"`` with
  the full four-backend sweep in its ``backends`` column (the bench
  asserts bit-identity across backends before emitting the row), the
  deterministic columns (``answers``, ``supersteps``, ``shortcut_edges``,
  ``shortcut_msgs``) must equal the committed baseline exactly, and every
  ``reach``/``hopset`` row on the ``path``/``grid`` datasets must keep
  ``reduction >= SHORTCUT_REDUCTION_FLOOR`` (all superstep counts are
  deterministic; the tightest pinned cell, the exact-distance hopset on
  the tall grid, sits at ~4.05x).  ``build_ms``/``time_ms`` are measured
  and therefore reported but never compared.

Exit status 0 = pass, 1 = regression, 2 = bad input.  When the run is
*better* than baseline by more than the tolerance the gate still passes but
suggests refreshing ``benchmarks/baseline.json``.  A Markdown summary is
appended to ``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Deterministic modeled workload costs (lower is better), per row mode.
COST_METRICS = ("traffic_KB", "network_ms", "visits")
#: Absolute floors on the workload batch row (higher is better).
FLOORS = {"hit_rate": 0.5, "speedup": 1.5}
EXPERIMENT = "workload"
#: Partitioners whose boundary counts get exact (deterministic) ceilings.
CEILING_PARTITIONERS = ("refined", "multilevel")
#: Datasets on which `refined` must strictly beat `hash` (Vf AND traffic).
MIN_REFINED_WINS = 2


def load_payload(path: Path) -> Dict[str, dict]:
    """Read one bench JSON (experiment id -> {columns, rows, ...})."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def workload_rows(payload: Dict[str, dict], origin: str) -> Dict[str, Dict[str, object]]:
    """The workload experiment's rows keyed by mode, or die with advice."""
    experiment = payload.get(EXPERIMENT)
    if not experiment or "rows" not in experiment:
        raise SystemExit(
            f"error: {origin} has no {EXPERIMENT!r} experiment; run "
            f"`python -m repro.bench {EXPERIMENT} --json <file>`"
        )
    return {str(row.get("mode")): row for row in experiment["rows"]}


def load_rows(path: Path) -> Dict[str, Dict[str, object]]:
    """Back-compat shim: workload rows of a single bench JSON, by mode."""
    return workload_rows(load_payload(path), str(path))


def partition_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[Tuple[str, str, str], Dict[str, object]]]:
    """Partition rows keyed ``(dataset, partitioner, algorithm)``, if present."""
    experiment = payload.get("partition")
    if not experiment or "rows" not in experiment:
        return None
    return {
        (
            str(row.get("dataset")),
            str(row.get("partitioner")),
            str(row.get("algorithm")),
        ): row
        for row in experiment["rows"]
    }


def mutation_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[str, Dict[str, object]]]:
    """Mutation-experiment rows keyed by scenario, if present."""
    experiment = payload.get("mutation")
    if not experiment or "rows" not in experiment:
        return None
    return {str(row.get("scenario")): row for row in experiment["rows"]}


def baselines_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[Tuple[str, str], Dict[str, object]]]:
    """Baselines-experiment rows keyed ``(algorithm, backend)``, if present."""
    experiment = payload.get("baselines")
    if not experiment or "rows" not in experiment:
        return None
    return {
        (str(row.get("algorithm")), str(row.get("backend"))): row
        for row in experiment["rows"]
    }


def kernels_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[Tuple[str, str, str, str], Dict[str, object]]]:
    """Kernels rows keyed ``(dataset, mode, kernel, backend)``, if present."""
    experiment = payload.get("kernels")
    if not experiment or "rows" not in experiment:
        return None
    return {
        (
            str(row.get("dataset")),
            str(row.get("mode")),
            str(row.get("kernel")),
            str(row.get("backend")),
        ): row
        for row in experiment["rows"]
    }


def as_float(
    row: Dict[str, object], metric: str, origin: str, label: Optional[str] = None
) -> float:
    """Fetch a numeric cell or die naming the offending row.

    ``label`` identifies the row in the error message; it defaults to the
    workload rows' ``mode`` column (partition callers pass their
    ``dataset/partitioner/algorithm`` key instead).
    """
    value = row.get(metric)
    if not isinstance(value, (int, float)):
        label = label if label is not None else repr(row.get("mode"))
        raise SystemExit(f"error: {origin} row {label} lacks {metric!r}")
    return float(value)


def check_workload(
    current_rows: Dict[str, Dict[str, object]],
    baseline_rows: Dict[str, Dict[str, object]],
    tolerance: float,
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    improvements: List[str],
    report: List[str],
) -> None:
    """Tolerance-compare workload cost metrics and enforce serving floors."""
    for mode in ("one-by-one", "batch"):
        base_row = baseline_rows.get(mode)
        cur_row = current_rows.get(mode)
        if base_row is None or cur_row is None:
            failures.append(f"row {mode!r} missing from baseline or current run")
            continue
        for metric in COST_METRICS:
            base = as_float(base_row, metric, baseline_origin)
            cur = as_float(cur_row, metric, current_origin)
            limit = base * (1.0 + tolerance)
            if cur > limit:
                status = "FAIL"
                failures.append(
                    f"{mode}/{metric}: {cur:g} exceeds baseline {base:g} "
                    f"by more than {tolerance:.0%} (limit {limit:g})"
                )
            else:
                status = "ok"
                if base > 0 and cur < base * (1.0 - tolerance):
                    improvements.append(
                        f"{mode}/{metric}: {cur:g} is >{tolerance:.0%} below "
                        f"baseline {base:g}"
                    )
            report.append(
                f"| {mode} | {metric} | {base:g} | {cur:g} | {limit:g} | {status} |"
            )

    batch_row = current_rows.get("batch")
    if batch_row is not None:
        for metric, floor in FLOORS.items():
            value = as_float(batch_row, metric, current_origin)
            if value < floor:
                status = "FAIL"
                failures.append(f"batch/{metric}: {value:g} is below the floor {floor:g}")
            else:
                status = "ok"
            report.append(
                f"| batch | {metric} (floor) | >= {floor:g} | {value:g} | - | {status} |"
            )


def check_partition(
    current: Dict[Tuple[str, str, str], Dict[str, object]],
    baseline: Dict[Tuple[str, str, str], Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    improvements: List[str],
    report: List[str],
) -> None:
    """Exact Vf ceilings for refined/multilevel + refined-beats-hash wins."""
    # (a) deterministic boundary-count ceilings on the boundary-aware rows
    for key, base_row in sorted(baseline.items()):
        dataset, partitioner, algorithm = key
        if partitioner not in CEILING_PARTITIONERS:
            continue
        cur_row = current.get(key)
        label = f"{dataset}/{partitioner}/{algorithm}"
        if cur_row is None:
            failures.append(f"partition row {label} missing from current run")
            continue
        base_vf = as_float(base_row, "Vf", baseline_origin, label)
        cur_vf = as_float(cur_row, "Vf", current_origin, label)
        if cur_vf > base_vf:
            status = "FAIL"
            failures.append(
                f"partition {label}: Vf={cur_vf:g} exceeds the committed "
                f"ceiling {base_vf:g} (boundary counts are deterministic — "
                f"a genuine refinement regression)"
            )
        else:
            status = "ok"
            if cur_vf < base_vf:
                improvements.append(
                    f"partition {label}: Vf={cur_vf:g} is below the "
                    f"ceiling {base_vf:g}"
                )
        report.append(
            f"| {label} | Vf (ceiling) | {base_vf:g} | {cur_vf:g} "
            f"| {base_vf:g} | {status} |"
        )

    # (b) refined must strictly beat hash on Vf AND traffic, >= N datasets
    datasets = sorted({dataset for dataset, _p, _a in current})
    wins = 0
    for dataset in datasets:
        refined = current.get((dataset, "refined", "disReach"))
        hash_row = current.get((dataset, "hash", "disReach"))
        if refined is None or hash_row is None:
            continue
        refined_label = f"{dataset}/refined/disReach"
        hash_label = f"{dataset}/hash/disReach"
        vf_win = as_float(refined, "Vf", current_origin, refined_label) < as_float(
            hash_row, "Vf", current_origin, hash_label
        )
        traffic_win = as_float(
            refined, "traffic_KB", current_origin, refined_label
        ) < as_float(hash_row, "traffic_KB", current_origin, hash_label)
        won = vf_win and traffic_win
        wins += won
        report.append(
            f"| {dataset} | refined < hash (Vf & traffic) | - "
            f"| {'win' if won else 'loss'} | - | {'ok' if won else 'info'} |"
        )
    if wins < MIN_REFINED_WINS:
        failures.append(
            f"partition: refined beats hash on only {wins} dataset(s); "
            f"the acceptance bar is {MIN_REFINED_WINS} (strictly lower Vf "
            f"AND modeled traffic)"
        )


def check_mutation(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    tolerance: float,
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    improvements: List[str],
    report: List[str],
) -> None:
    """Streaming-refinement floors + tolerance-compared mutation costs."""
    drift = current.get("drift-refine")
    if drift is None:
        failures.append("mutation row 'drift-refine' missing from current run")
    else:
        label = "mutation/drift-refine"
        refinements = as_float(drift, "refinements", current_origin, label)
        moves = as_float(drift, "moves", current_origin, label)
        budget = as_float(drift, "budget", current_origin, label)
        vf_ratio = as_float(drift, "vf_ratio", current_origin, label)
        vf_tol = as_float(drift, "vf_tol", current_origin, label)
        checks = [
            ("refinements (floor)", refinements, ">=", 1.0),
            ("moves <= refinements*budget", moves, "<=", refinements * budget),
            ("vf_ratio <= vf_tol", vf_ratio, "<=", vf_tol),
        ]
        for name, value, op, limit in checks:
            ok = value >= limit if op == ">=" else value <= limit
            if not ok:
                failures.append(
                    f"{label}: {name} violated ({value:g} vs {limit:g}) — "
                    "the drift-triggered bounded refinement broke its "
                    "declared envelope (all inputs deterministic)"
                )
            report.append(
                f"| {label} | {name} | {op} {limit:g} | {value:g} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )

    # Session-remap batching floors: at S >= 4 the batched remap must have
    # deduplicated measurably (saved visits > 0, batched visits strictly
    # below S x the per-session cost).  Everything here is deterministic.
    sweep = sorted(
        (row for scenario, row in current.items() if scenario.startswith("sessions-")),
        key=lambda row: row.get("sessions") or 0,
    )
    if not sweep and any(s.startswith("sessions-") for s in baseline):
        failures.append(
            "mutation: baseline has sessions-S sweep rows but the current "
            "run has none; run `python -m repro.bench mutation --sessions 8`"
        )
    # The single-session row anchors the "strictly below S x" comparison:
    # its remap_visits are what one standing query's remaps cost, so a
    # batched sweep row must land strictly under S times it.
    single = next(
        (row for row in sweep if row.get("sessions") == 1), None
    )
    for row in sweep:
        sessions = as_float(row, "sessions", current_origin, "mutation/sessions")
        if sessions < 4:
            continue
        label = f"mutation/sessions-{sessions:g}"
        saved = as_float(row, "remap_visits_saved", current_origin, label)
        batched = as_float(row, "remap_visits", current_origin, label)
        refinements = as_float(row, "refinements", current_origin, label)
        if single is not None:
            # Independent anchor: S x the measured single-session cost.
            per_session_total = sessions * as_float(
                single, "remap_visits", current_origin, "mutation/sessions-1"
            )
        else:
            # Fallback (no S=1 row): the row's own replayed per-session
            # total — weaker, since saved appears on both sides.
            per_session_total = batched + saved
        checks = [
            ("refinements (floor)", refinements, ">=", 1.0),
            ("remap_visits_saved > 0", saved, ">=", 1.0),
            ("remap_visits < S x per-session", batched, "<=", per_session_total - 1),
        ]
        for name, value, op, limit in checks:
            ok = value >= limit if op == ">=" else value <= limit
            if not ok:
                failures.append(
                    f"{label}: {name} violated ({value:g} vs {limit:g}) — "
                    "the batched session remap did not dedupe the shared "
                    "per-fragment work (all inputs deterministic)"
                )
            report.append(
                f"| {label} | {name} | {op} {limit:g} | {value:g} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )

    for scenario in ("static", "drift-refine"):
        base_row = baseline.get(scenario)
        cur_row = current.get(scenario)
        if base_row is None or cur_row is None:
            failures.append(
                f"mutation row {scenario!r} missing from baseline or current run"
            )
            continue
        for metric in COST_METRICS:
            label = f"mutation/{scenario}"
            base = as_float(base_row, metric, baseline_origin, label)
            cur = as_float(cur_row, metric, current_origin, label)
            limit = base * (1.0 + tolerance)
            if cur > limit:
                status = "FAIL"
                failures.append(
                    f"{label}/{metric}: {cur:g} exceeds baseline {base:g} "
                    f"by more than {tolerance:.0%} (limit {limit:g})"
                )
            else:
                status = "ok"
                if base > 0 and cur < base * (1.0 - tolerance):
                    improvements.append(
                        f"{label}/{metric}: {cur:g} is >{tolerance:.0%} "
                        f"below baseline {base:g}"
                    )
            report.append(
                f"| {label} | {metric} | {base:g} | {cur:g} | {limit:g} "
                f"| {status} |"
            )


#: Deterministic columns of the ``baselines`` experiment (time_ms excluded).
BASELINE_IDENTITY_METRICS = (
    "answers", "total_visits", "traffic_KB", "messages", "supersteps"
)


def check_baselines(
    current: Dict[Tuple[str, str], Dict[str, object]],
    baseline: Dict[Tuple[str, str], Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    report: List[str],
) -> None:
    """Exact cross-backend identity of the sharded Pregel baselines.

    Two checks, both exact (everything but wall time is deterministic):
    within the current run, every backend row of an algorithm must equal
    its sequential row; and the current sequential row must equal the
    committed baseline's (catching modeled-cost drift).  Rows the baseline
    has but the current run lacks are failures — a silently dropped
    backend or algorithm must not pass as vacuously identical.
    """
    algorithms = sorted(
        {algorithm for algorithm, _backend in current}
        | {algorithm for algorithm, _backend in baseline}
    )
    for algorithm in algorithms:
        reference = current.get((algorithm, "sequential"))
        if reference is None:
            failures.append(
                f"baselines: {algorithm} has no sequential row in "
                f"{current_origin}"
            )
            continue
        backends = sorted(
            {backend for a, backend in current if a == algorithm}
            | {backend for a, backend in baseline if a == algorithm}
        )
        for backend in backends:
            row = current.get((algorithm, backend))
            label = f"baselines/{algorithm}/{backend}"
            if row is None:
                failures.append(
                    f"{label}: row present in {baseline_origin} but missing "
                    f"from {current_origin} — a backend dropped out of the run"
                )
                report.append(
                    f"| {label} | cross-backend identity | sequential | "
                    f"MISSING | - | FAIL |"
                )
                continue
            mismatched = [
                metric
                for metric in BASELINE_IDENTITY_METRICS
                if row.get(metric) != reference.get(metric)
            ]
            if mismatched:
                failures.append(
                    f"{label}: diverges from the sequential backend on "
                    f"{', '.join(mismatched)} — cross-backend identity broken"
                )
            report.append(
                f"| {label} | cross-backend identity | sequential | "
                f"{'match' if not mismatched else 'MISMATCH'} | - "
                f"| {'ok' if not mismatched else 'FAIL'} |"
            )
        base_reference = baseline.get((algorithm, "sequential"))
        if base_reference is None:
            continue  # newly added algorithm: nothing committed to pin to
        drifted = [
            metric
            for metric in BASELINE_IDENTITY_METRICS
            if reference.get(metric) != base_reference.get(metric)
        ]
        label = f"baselines/{algorithm}"
        if drifted:
            failures.append(
                f"{label}: sequential modeled stats drifted from the "
                f"committed baseline on {', '.join(drifted)} (deterministic "
                "quantities — regenerate benchmarks/baseline.json only for "
                "an intentional cost-model change)"
            )
        report.append(
            f"| {label} | vs committed baseline | exact | "
            f"{'match' if not drifted else 'MISMATCH'} | - "
            f"| {'ok' if not drifted else 'FAIL'} |"
        )


#: Deterministic columns of the ``kernels`` evaluate rows (eval_ms excluded).
KERNEL_IDENTITY_METRICS = (
    "answers", "total_visits", "traffic_KB", "messages", "supersteps"
)
#: Wall-clock floor: numpy kernel vs python on the pinned amazon jobs row.
#: The measured ratio sits well above this (CPU-time sums, best-of-3), so
#: the generous gap absorbs CI-machine jitter without hiding a real
#: de-vectorization regression.
KERNEL_SPEEDUP_FLOOR = 5.0
#: Kernel x backend coverage every run must carry (numba is optional).
REQUIRED_KERNELS = ("python", "numpy")
REQUIRED_BACKENDS = ("process", "sequential", "thread")


def check_kernels(
    current: Dict[Tuple[str, str, str, str], Dict[str, object]],
    baseline: Dict[Tuple[str, str, str, str], Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    report: List[str],
) -> None:
    """Kernel bit-identity (exact) + the numpy wall-clock speedup floor.

    Three checks: every ``evaluate`` row of the current run must carry
    modeled stats identical to the run's own python/sequential row for the
    same dataset (kernels may change *how* a fragment is swept, never what
    the cost model observes); the python/sequential rows must equal the
    committed baseline's (catching modeled-cost drift); and the pinned
    amazon ``jobs`` row for numpy must keep ``speedup`` at or above
    :data:`KERNEL_SPEEDUP_FLOOR`.  Missing required kernel x backend rows
    are failures — a silently dropped leg must not pass as vacuously
    identical (numba rows are compared when present, never required).
    """
    datasets = sorted(
        {ds for ds, mode, _k, _b in current if mode == "evaluate"}
        | {ds for ds, mode, _k, _b in baseline if mode == "evaluate"}
    )
    for dataset in datasets:
        reference = current.get((dataset, "evaluate", "python", "sequential"))
        if reference is None:
            failures.append(
                f"kernels: {dataset} has no python/sequential evaluate row "
                f"in {current_origin}"
            )
            continue
        present_kernels = {
            k for ds, mode, k, _b in current if ds == dataset and mode == "evaluate"
        }
        compared = sorted(present_kernels | set(REQUIRED_KERNELS))
        for kernel in compared:
            for backend in REQUIRED_BACKENDS:
                row = current.get((dataset, "evaluate", kernel, backend))
                label = f"kernels/{dataset}/{kernel}/{backend}"
                if row is None:
                    if kernel not in REQUIRED_KERNELS:
                        continue  # optional kernel (numba) not in this run
                    failures.append(
                        f"{label}: required kernel x backend row missing from "
                        f"{current_origin} — a kernel leg dropped out of the run"
                    )
                    report.append(
                        f"| {label} | kernel identity | python/sequential | "
                        f"MISSING | - | FAIL |"
                    )
                    continue
                mismatched = [
                    metric
                    for metric in KERNEL_IDENTITY_METRICS
                    if row.get(metric) != reference.get(metric)
                ]
                if mismatched:
                    failures.append(
                        f"{label}: diverges from python/sequential on "
                        f"{', '.join(mismatched)} — kernel identity broken"
                    )
                report.append(
                    f"| {label} | kernel identity | python/sequential | "
                    f"{'match' if not mismatched else 'MISMATCH'} | - "
                    f"| {'ok' if not mismatched else 'FAIL'} |"
                )
        base_reference = baseline.get(
            (dataset, "evaluate", "python", "sequential")
        )
        if base_reference is None:
            continue  # newly added dataset: nothing committed to pin to
        drifted = [
            metric
            for metric in KERNEL_IDENTITY_METRICS
            if reference.get(metric) != base_reference.get(metric)
        ]
        label = f"kernels/{dataset}"
        if drifted:
            failures.append(
                f"{label}: python/sequential modeled stats drifted from the "
                f"committed baseline on {', '.join(drifted)} (deterministic "
                "quantities — regenerate benchmarks/baseline.json only for "
                "an intentional cost-model change)"
            )
        report.append(
            f"| {label} | vs committed baseline | exact | "
            f"{'match' if not drifted else 'MISMATCH'} | - "
            f"| {'ok' if not drifted else 'FAIL'} |"
        )

    jobs_row = current.get(("amazon", "jobs", "numpy", "None"))
    label = "kernels/amazon/jobs/numpy"
    if jobs_row is None:
        failures.append(
            f"{label}: pinned speedup row missing from {current_origin}; run "
            f"`python -m repro.bench kernels --json <file>`"
        )
    else:
        speedup = as_float(jobs_row, "speedup", current_origin, label)
        ok = speedup >= KERNEL_SPEEDUP_FLOOR
        if not ok:
            failures.append(
                f"{label}: speedup {speedup:g}x is below the floor "
                f"{KERNEL_SPEEDUP_FLOOR:g}x — the vectorized kernel lost its "
                "wall-clock advantage on the pinned amazon reach+bounded mix"
            )
        report.append(
            f"| {label} | speedup (floor) | >= {KERNEL_SPEEDUP_FLOOR:g} | "
            f"{speedup:g} | - | {'ok' if ok else 'FAIL'} |"
        )


def serving_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[str, Dict[str, object]]]:
    """Serving-experiment rows keyed by mode, if present."""
    experiment = payload.get("serving")
    if not experiment or "rows" not in experiment:
        return None
    return {str(row.get("mode")): row for row in experiment["rows"]}


#: Closed-loop QPS floor: fraction of the committed baseline's serving QPS
#: the current run must reach.  QPS is *measured* (wall clock across TCP +
#: thread scheduling), so the floor is deliberately loose — it catches a
#: serving path falling off a cliff (serialization in the batcher, a lost
#: admission window), not machine-to-machine jitter.
SERVING_QPS_FLOOR_FRACTION = 0.15
#: p99 admission-to-reply latency ceiling: multiple of the baseline's p99.
SERVING_P99_CEILING_FACTOR = 8.0


def check_serving(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    report: List[str],
) -> None:
    """Exact answer identity + loose measured QPS floor / p99 ceiling.

    ``answers_match`` is deterministic (every TCP-served answer compared to
    direct sequential evaluation inside the experiment) and gated exactly;
    the closed-loop ``qps`` and server-side ``p99_ms`` are measured, so
    they get a conservative floor/ceiling relative to the committed
    baseline rather than a tolerance band.
    """
    for mode in ("direct", "serving"):
        row = current.get(mode)
        label = f"serving/{mode}"
        if row is None:
            failures.append(
                f"{label}: row missing from {current_origin}; run "
                f"`python -m repro.bench serving --json <file>`"
            )
            continue
        matched = row.get("answers_match") == 1
        if not matched:
            failures.append(
                f"{label}: answers_match != 1 — TCP-served answers diverged "
                "from direct sequential evaluation"
            )
        report.append(
            f"| {label} | answers_match (exact) | 1 | "
            f"{row.get('answers_match')} | - | {'ok' if matched else 'FAIL'} |"
        )

    row = current.get("serving")
    base = baseline.get("serving")
    if row is None or base is None:
        if base is None:
            failures.append(
                f"serving: row 'serving' missing from {baseline_origin}"
            )
        return
    label = "serving/serving"
    qps = as_float(row, "qps", current_origin, label)
    qps_floor = as_float(base, "qps", baseline_origin, label) * SERVING_QPS_FLOOR_FRACTION
    ok = qps >= qps_floor
    if not ok:
        failures.append(
            f"{label}: qps {qps:g} is below the floor {qps_floor:g} "
            f"({SERVING_QPS_FLOOR_FRACTION:.0%} of baseline) — the serving "
            "path lost its throughput"
        )
    report.append(
        f"| {label} | qps (floor) | >= {qps_floor:g} | {qps:g} | - "
        f"| {'ok' if ok else 'FAIL'} |"
    )
    p99 = as_float(row, "p99_ms", current_origin, label)
    p99_ceiling = (
        as_float(base, "p99_ms", baseline_origin, label) * SERVING_P99_CEILING_FACTOR
    )
    ok = p99 <= p99_ceiling
    if not ok:
        failures.append(
            f"{label}: p99_ms {p99:g} exceeds the ceiling {p99_ceiling:g} "
            f"({SERVING_P99_CEILING_FACTOR:g}x baseline) — admission-to-reply "
            "latency blew up"
        )
    report.append(
        f"| {label} | p99_ms (ceiling) | <= {p99_ceiling:g} | {p99:g} | - "
        f"| {'ok' if ok else 'FAIL'} |"
    )


def snap_rows(
    payload: Dict[str, dict],
) -> Optional[List[Dict[str, object]]]:
    """Snap-experiment rows (all modes), if present."""
    experiment = payload.get("snap")
    if not experiment or "rows" not in experiment:
        return None
    return list(experiment["rows"])


def _snap_key(row: Dict[str, object]) -> Tuple[str, str, str, str, str, str]:
    """Identity of one snap row (mode + full sweep coordinates)."""
    return tuple(
        str(row.get(col))
        for col in ("dataset", "mode", "partitioner", "algorithm", "backend", "kernel")
    )


def check_snap(
    current: List[Dict[str, object]],
    baseline: List[Dict[str, object]],
    tolerance: float,
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    improvements: List[str],
    report: List[str],
) -> None:
    """Real-graph harness gate: envelopes, replay identity, refined wins.

    Everything gated here is deterministic (modeled traffic/visits, boundary
    counts, answers, replay identity on the committed fixtures), so the
    checks are exact except the tolerance band on the modeled cost columns:

    * every ``static`` row holds the Theorem 1–2 envelope (``env_ok == 1``)
      and its answers agree with every other cell of its (dataset,
      algorithm) pair — partition/backend/kernel agnosticism;
    * per dataset, ``refined`` beats-or-ties ``hash`` on both ``|Vf|`` and
      modeled disReach ``traffic_KB`` (the paper's headline ordering);
    * every ``replay`` row is bit-identical to its static prefix load
      (``replay_match == 1``) and every ``replay-monitor`` row fired at
      least one drift-triggered refinement;
    * against the committed baseline: ``Vf`` is an exact ceiling, answers
      match exactly, and ``traffic_KB``/``network_ms``/``visits`` stay
      within the tolerance band; a baseline row missing from the current
      run (e.g. silently skipped) is a failure.
    """
    cur_by_key = {_snap_key(row): row for row in current}

    # (a) within-run invariants of the current rows.
    answer_ref: Dict[Tuple[str, str], Tuple[str, object]] = {}
    for row in current:
        key = _snap_key(row)
        label = "snap/" + "/".join(p for p in key if p != "None")
        mode = str(row.get("mode"))
        if mode == "static":
            env_ok = row.get("env_ok") == 1
            if not env_ok:
                failures.append(
                    f"{label}: env_ok != 1 — realized modeled traffic "
                    "escaped the Theorem 1-2 envelope"
                )
            report.append(
                f"| {label} | env_ok (exact) | 1 | {row.get('env_ok')} | - "
                f"| {'ok' if env_ok else 'FAIL'} |"
            )
            pair = (str(row.get("dataset")), str(row.get("algorithm")))
            answers = str(row.get("answers"))
            if pair not in answer_ref:
                answer_ref[pair] = (answers, label)
            elif answers != answer_ref[pair][0]:
                failures.append(
                    f"{label}: answers {answers!r} diverge from "
                    f"{answer_ref[pair][1]}'s {answer_ref[pair][0]!r} — "
                    "partition/backend/kernel agnosticism broken"
                )
        elif mode == "replay":
            matched = row.get("replay_match") == 1
            if not matched:
                failures.append(
                    f"{label}: replay_match != 1 — the edge-arrival replay "
                    "diverged from the static prefix load"
                )
            report.append(
                f"| {label} | replay_match (exact) | 1 "
                f"| {row.get('replay_match')} | - "
                f"| {'ok' if matched else 'FAIL'} |"
            )
        elif mode == "replay-monitor":
            refines = as_float(row, "refines", current_origin, label)
            ok = refines >= 1
            if not ok:
                failures.append(
                    f"{label}: no drift-triggered refinement fired during "
                    "the replay (refines == 0)"
                )
            report.append(
                f"| {label} | refines (floor) | >= 1 | {refines:g} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )

    # (b) refined beats-or-ties hash per dataset (Vf AND disReach traffic).
    static = [row for row in current if row.get("mode") == "static"]
    for dataset in sorted({str(row.get("dataset")) for row in static}):
        pick = {
            pname: next(
                (
                    row
                    for row in static
                    if str(row.get("dataset")) == dataset
                    and str(row.get("partitioner")) == pname
                    and str(row.get("algorithm")) == "disReach"
                ),
                None,
            )
            for pname in ("refined", "hash")
        }
        if pick["refined"] is None or pick["hash"] is None:
            continue
        label = f"snap/{dataset}"
        vf_ok = as_float(
            pick["refined"], "Vf", current_origin, label
        ) <= as_float(pick["hash"], "Vf", current_origin, label)
        traffic_ok = as_float(
            pick["refined"], "traffic_KB", current_origin, label
        ) <= as_float(pick["hash"], "traffic_KB", current_origin, label)
        ok = vf_ok and traffic_ok
        if not ok:
            failures.append(
                f"{label}: refined does not beat-or-tie hash on "
                f"{'Vf' if not vf_ok else 'traffic_KB'} — the paper's "
                "partition-quality ordering broke on a real edge list"
            )
        report.append(
            f"| {label} | refined <= hash (Vf & traffic) | - "
            f"| {'ok' if ok else 'violated'} | - | {'ok' if ok else 'FAIL'} |"
        )

    # (c) against the committed baseline: exact Vf/answers, cost tolerance.
    for row in baseline:
        if str(row.get("mode")) != "static":
            continue
        key = _snap_key(row)
        label = "snap/" + "/".join(key)
        cur = cur_by_key.get(key)
        if cur is None:
            failures.append(
                f"{label}: baseline row missing from the current run — a "
                "sweep cell was dropped or silently skipped"
            )
            continue
        base_vf = as_float(row, "Vf", baseline_origin, label)
        cur_vf = as_float(cur, "Vf", current_origin, label)
        if cur_vf > base_vf:
            failures.append(
                f"{label}: Vf={cur_vf:g} exceeds the committed ceiling "
                f"{base_vf:g} (deterministic)"
            )
        elif cur_vf < base_vf:
            improvements.append(
                f"{label}: Vf={cur_vf:g} is below the ceiling {base_vf:g}"
            )
        if str(cur.get("answers")) != str(row.get("answers")):
            failures.append(
                f"{label}: answers {cur.get('answers')!r} differ from the "
                f"baseline's {row.get('answers')!r} (deterministic workload)"
            )
        for metric in COST_METRICS:
            base_value = as_float(row, metric, baseline_origin, label)
            cur_value = as_float(cur, metric, current_origin, label)
            limit = base_value * (1.0 + tolerance)
            ok = cur_value <= limit
            if not ok:
                failures.append(
                    f"{label}: {metric} regressed {base_value:g} -> "
                    f"{cur_value:g} (tolerance {tolerance:.0%})"
                )
            elif base_value > 0 and cur_value < base_value * (1.0 - tolerance):
                improvements.append(
                    f"{label}: {metric} improved {base_value:g} -> {cur_value:g}"
                )
            report.append(
                f"| {label} | {metric} | {base_value:g} | {cur_value:g} "
                f"| {limit:g} | {'ok' if ok else 'FAIL'} |"
            )


def oracles_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[str, Dict[str, object]]]:
    """Oracles-experiment rows keyed by oracle name, if present."""
    experiment = payload.get("oracles")
    if not experiment or "rows" not in experiment:
        return None
    return {str(row.get("oracle")): row for row in experiment["rows"]}


#: Oracle rows every run must carry (the registry's maintainable sweep).
REQUIRED_ORACLES = ("none", "bfs", "tol", "landmarks")
#: Oracles whose incremental maintenance must beat rebuild-at-every-mutation.
MAINTAINED_ORACLES = ("tol", "landmarks")
#: TOL's acceptance ceiling: total maintenance <= half the rebuild cost.
ORACLE_TOL_MAINTAIN_CEILING = 0.5
#: Warm-query wall-clock floor vs the BFS oracle on the pinned stream.  The
#: measured ratios sit far above this (label intersection vs per-pair BFS),
#: so the generous gap absorbs CI jitter without hiding an index that
#: quietly degenerated into a BFS.
ORACLE_SPEEDUP_FLOOR = 3.0


def check_oracles(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    report: List[str],
) -> None:
    """Maintained-index identity (exact) + maintain-vs-rebuild ceilings.

    Four checks on the current run: every required oracle row is present;
    every present row carries ``answers_match == 1`` and
    ``executors_match == 1`` (bit-identity against the index-free sweep,
    and across sequential/thread/process/socket — exact, no tolerance);
    the maintained oracles keep ``maintain_s`` strictly below
    ``rebuild_s`` (with TOL additionally under
    :data:`ORACLE_TOL_MAINTAIN_CEILING`); and their warm-query speedup
    vs the BFS oracle stays above :data:`ORACLE_SPEEDUP_FLOOR`.  The
    committed baseline only establishes that the experiment is gated —
    identity and ratios are properties of the current run.
    """
    del baseline, baseline_origin  # presence-triggered; see docstring
    for name in REQUIRED_ORACLES:
        if name not in current:
            failures.append(
                f"oracles/{name}: required row missing from {current_origin}; "
                "run `python -m repro.bench oracles --json <file>`"
            )
            report.append(
                f"| oracles/{name} | row present | yes | MISSING | - | FAIL |"
            )
    for name in sorted(current):
        row = current[name]
        label = f"oracles/{name}"
        for metric in ("answers_match", "executors_match"):
            value = row.get(metric)
            ok = value == 1
            if not ok:
                failures.append(
                    f"{label}: {metric} = {value!r} — the maintained index "
                    "diverged from the index-free sweep (identity is exact)"
                )
            report.append(
                f"| {label} | {metric} (exact) | 1 | {value!r} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )
    for name in MAINTAINED_ORACLES:
        row = current.get(name)
        if row is None:
            continue  # already failed the presence check above
        label = f"oracles/{name}"
        maintain_s = as_float(row, "maintain_s", current_origin, label)
        rebuild_s = as_float(row, "rebuild_s", current_origin, label)
        ceiling = ORACLE_TOL_MAINTAIN_CEILING if name == "tol" else 1.0
        ok = rebuild_s > 0 and maintain_s < rebuild_s * ceiling
        if not ok:
            failures.append(
                f"{label}: maintenance {maintain_s:g}s is not under "
                f"{ceiling:g}x the rebuild-equivalent {rebuild_s:g}s — "
                "incremental maintenance lost to rebuild-at-every-mutation"
            )
        report.append(
            f"| {label} | maintain_s (ceiling) | < {ceiling:g}x rebuild | "
            f"{maintain_s:g} vs {rebuild_s:g} | - | {'ok' if ok else 'FAIL'} |"
        )
        speedup = as_float(row, "speedup_vs_bfs", current_origin, label)
        ok = speedup >= ORACLE_SPEEDUP_FLOOR
        if not ok:
            failures.append(
                f"{label}: warm-query speedup {speedup:g}x vs the BFS oracle "
                f"is below the floor {ORACLE_SPEEDUP_FLOOR:g}x — the label "
                "index lost its lookup advantage on the pinned stream"
            )
        report.append(
            f"| {label} | speedup_vs_bfs (floor) | >= "
            f"{ORACLE_SPEEDUP_FLOOR:g} | {speedup:g} | - "
            f"| {'ok' if ok else 'FAIL'} |"
        )


def shortcuts_rows(
    payload: Dict[str, dict],
) -> Optional[Dict[Tuple[str, str, str], Dict[str, object]]]:
    """Shortcuts rows keyed ``(dataset, mode, algorithm)``, if present."""
    experiment = payload.get("shortcuts")
    if not experiment or "rows" not in experiment:
        return None
    return {
        (
            str(row.get("dataset")),
            str(row.get("mode")),
            str(row.get("algorithm")),
        ): row
        for row in experiment["rows"]
    }


#: Deterministic columns of the shortcuts rows (build_ms/time_ms are
#: measured construction/query wall time and therefore never compared).
SHORTCUT_IDENTITY_METRICS = (
    "answers", "supersteps", "shortcut_edges", "shortcut_msgs"
)
#: Superstep-reduction floor every reach/hopset cell must hold on the
#: pinned :data:`SHORTCUT_FLOOR_DATASETS`.  All superstep counts are
#: deterministic; the tightest pinned cell (hopset x disDistm on the tall
#: grid, where exact-distance shortcuts cannot skip the short axis) sits
#: at ~4.05x, everything else is 17x-128x.  longcycle rows are identity-
#: checked but not floored — they exist to pin the cyclic-graph behavior.
SHORTCUT_REDUCTION_FLOOR = 4.0
SHORTCUT_FLOOR_DATASETS = ("path", "grid")
#: Executor backends every ok row's sweep must cover (the bench asserts
#: modeled-stat bit-identity across them before emitting the row).
SHORTCUT_REQUIRED_BACKENDS = ("process", "sequential", "socket", "thread")


def check_shortcuts(
    current: Dict[Tuple[str, str, str], Dict[str, object]],
    baseline: Dict[Tuple[str, str, str], Dict[str, object]],
    current_origin: str,
    baseline_origin: str,
    failures: List[str],
    report: List[str],
) -> None:
    """Shortcut answer identity (exact) + the superstep-reduction floor.

    Four checks: every baseline cell must be present in the current run (a
    silently dropped dataset x mode x algorithm cell must not pass as
    vacuously fast); every cell except the by-construction
    ``reach x disDistm`` skip must carry ``status == "ok"`` and a
    ``backends`` sweep covering :data:`SHORTCUT_REQUIRED_BACKENDS`; the
    deterministic :data:`SHORTCUT_IDENTITY_METRICS` must equal the
    committed baseline exactly (answers and superstep counts are modeled,
    so any drift is a semantics change, not noise); and every
    ``reach``/``hopset`` row on :data:`SHORTCUT_FLOOR_DATASETS` must keep
    ``reduction`` at or above :data:`SHORTCUT_REDUCTION_FLOOR` — the
    acceptance bar of the shortcut precompute.
    """
    for key in sorted(baseline):
        if key not in current:
            failures.append(
                f"shortcuts/{'/'.join(key)}: baseline row missing from "
                f"{current_origin} — a sweep cell was dropped or silently "
                "skipped"
            )
            report.append(
                f"| shortcuts/{'/'.join(key)} | row present | yes | MISSING "
                f"| - | FAIL |"
            )
    for key in sorted(current):
        dataset, mode, algorithm = key
        row = current[key]
        label = f"shortcuts/{dataset}/{mode}/{algorithm}"
        status = str(row.get("status"))
        if mode == "reach" and algorithm == "disDistm":
            # By construction: reach shortcuts carry no distances, so the
            # bench emits a loud skip row instead of a sweep.
            ok = status.startswith("skipped")
            if not ok:
                failures.append(
                    f"{label}: expected the by-construction skip row, got "
                    f"status {status!r} — a weightless shortcut set reached "
                    "a distance query"
                )
            report.append(
                f"| {label} | status (exact) | skipped | {status} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )
            continue
        if status != "ok":
            failures.append(
                f"{label}: status {status!r} — a shortcut sweep cell "
                "degraded to a skip (backends must never drop silently)"
            )
            report.append(
                f"| {label} | status (exact) | ok | {status} | - | FAIL |"
            )
            continue
        swept = set(str(row.get("backends")).split("/"))
        missing = [b for b in SHORTCUT_REQUIRED_BACKENDS if b not in swept]
        if missing:
            failures.append(
                f"{label}: backend(s) {', '.join(missing)} missing from the "
                f"identity sweep {row.get('backends')!r}"
            )
        report.append(
            f"| {label} | backend sweep | "
            f"{'/'.join(SHORTCUT_REQUIRED_BACKENDS)} | {row.get('backends')} "
            f"| - | {'ok' if not missing else 'FAIL'} |"
        )
        base_row = baseline.get(key)
        if base_row is not None:
            drifted = [
                metric
                for metric in SHORTCUT_IDENTITY_METRICS
                if row.get(metric) != base_row.get(metric)
            ]
            if drifted:
                failures.append(
                    f"{label}: {', '.join(drifted)} drifted from the "
                    "committed baseline (deterministic quantities — "
                    "regenerate benchmarks/baseline.json only for an "
                    "intentional shortcut-construction change)"
                )
            report.append(
                f"| {label} | vs committed baseline | exact | "
                f"{'match' if not drifted else 'MISMATCH'} | - "
                f"| {'ok' if not drifted else 'FAIL'} |"
            )
        if mode != "none" and dataset in SHORTCUT_FLOOR_DATASETS:
            reduction = as_float(row, "reduction", current_origin, label)
            ok = reduction >= SHORTCUT_REDUCTION_FLOOR
            if not ok:
                failures.append(
                    f"{label}: superstep reduction {reduction:g}x is below "
                    f"the floor {SHORTCUT_REDUCTION_FLOOR:g}x — the "
                    "precompute stopped paying on a pinned high-diameter "
                    "dataset"
                )
            report.append(
                f"| {label} | reduction (floor) | >= "
                f"{SHORTCUT_REDUCTION_FLOOR:g} | {reduction:g} | - "
                f"| {'ok' if ok else 'FAIL'} |"
            )


#: Experiment ids ``--only`` accepts (everything the gate knows to check).
GATED_EXPERIMENTS = (
    "workload", "partition", "mutation", "baselines", "kernels", "serving",
    "snap", "oracles", "shortcuts",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the gate; see the module docstring for semantics."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        type=Path,
        nargs="+",
        metavar="JSON",
        help="bench JSON(s) of this run followed by the committed baseline "
        "(last path); current files are merged by experiment id",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative workload-cost growth before failing "
        "(default: 0.25; partition Vf ceilings are always exact)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=GATED_EXPERIMENTS,
        metavar="EXPERIMENT",
        help="gate only the named experiment(s) (repeatable; default: every "
        "experiment the baseline carries — use this when a CI job runs a "
        "single experiment, e.g. `--only serving`)",
    )
    args = parser.parse_args(argv)
    if len(args.paths) < 2:
        parser.error("need at least one current JSON and the baseline JSON")
    *current_paths, baseline_path = args.paths

    current_payload: Dict[str, dict] = {}
    for path in current_paths:
        payload = load_payload(path)
        duplicated = sorted(set(payload) & set(current_payload))
        if duplicated:
            raise SystemExit(
                f"error: experiment(s) {', '.join(duplicated)} appear in more "
                f"than one current file — ambiguous which run to gate on; "
                f"pass each experiment's JSON once"
            )
        current_payload.update(payload)
    baseline_payload = load_payload(baseline_path)
    current_origin = ", ".join(str(p) for p in current_paths)

    only = set(args.only or ())

    def wanted(experiment: str) -> bool:
        """Should this experiment's checks run under ``--only``?"""
        return not only or experiment in only

    failures: List[str] = []
    improvements: List[str] = []
    report: List[str] = [
        "| row | metric | baseline | current | limit | status |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]

    if wanted("workload"):
        check_workload(
            workload_rows(current_payload, current_origin),
            workload_rows(baseline_payload, str(baseline_path)),
            args.tolerance,
            current_origin,
            str(baseline_path),
            failures,
            improvements,
            report,
        )

    baseline_partition = partition_rows(baseline_payload) if wanted("partition") else None
    if baseline_partition is not None:
        current_partition = partition_rows(current_payload)
        if current_partition is None:
            raise SystemExit(
                f"error: baseline has a partition experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench partition --json <file>`"
            )
        check_partition(
            current_partition,
            baseline_partition,
            current_origin,
            str(baseline_path),
            failures,
            improvements,
            report,
        )

    baseline_mutation = mutation_rows(baseline_payload) if wanted("mutation") else None
    if baseline_mutation is not None:
        current_mutation = mutation_rows(current_payload)
        if current_mutation is None:
            raise SystemExit(
                f"error: baseline has a mutation experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench mutation --json <file>`"
            )
        check_mutation(
            current_mutation,
            baseline_mutation,
            args.tolerance,
            current_origin,
            str(baseline_path),
            failures,
            improvements,
            report,
        )

    baseline_baselines = baselines_rows(baseline_payload) if wanted("baselines") else None
    if baseline_baselines is not None:
        current_baselines = baselines_rows(current_payload)
        if current_baselines is None:
            raise SystemExit(
                f"error: baseline has a baselines experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench baselines --json <file>`"
            )
        check_baselines(
            current_baselines,
            baseline_baselines,
            current_origin,
            str(baseline_path),
            failures,
            report,
        )

    baseline_kernels = kernels_rows(baseline_payload) if wanted("kernels") else None
    if baseline_kernels is not None:
        current_kernels = kernels_rows(current_payload)
        if current_kernels is None:
            raise SystemExit(
                f"error: baseline has a kernels experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench kernels --json <file>`"
            )
        check_kernels(
            current_kernels,
            baseline_kernels,
            current_origin,
            str(baseline_path),
            failures,
            report,
        )

    baseline_serving = serving_rows(baseline_payload) if wanted("serving") else None
    if baseline_serving is not None:
        current_serving = serving_rows(current_payload)
        if current_serving is None:
            raise SystemExit(
                f"error: baseline has a serving experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench serving --json <file>`"
            )
        check_serving(
            current_serving,
            baseline_serving,
            current_origin,
            str(baseline_path),
            failures,
            report,
        )

    baseline_oracles = oracles_rows(baseline_payload) if wanted("oracles") else None
    if baseline_oracles is not None:
        current_oracles = oracles_rows(current_payload)
        if current_oracles is None:
            raise SystemExit(
                f"error: baseline has an oracles experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench oracles --json <file>`"
            )
        check_oracles(
            current_oracles,
            baseline_oracles,
            current_origin,
            str(baseline_path),
            failures,
            report,
        )

    baseline_shortcuts = shortcuts_rows(baseline_payload) if wanted("shortcuts") else None
    if baseline_shortcuts is not None:
        current_shortcuts = shortcuts_rows(current_payload)
        if current_shortcuts is None:
            raise SystemExit(
                f"error: baseline has a shortcuts experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench shortcuts --json <file>`"
            )
        check_shortcuts(
            current_shortcuts,
            baseline_shortcuts,
            current_origin,
            str(baseline_path),
            failures,
            report,
        )

    baseline_snap = snap_rows(baseline_payload) if wanted("snap") else None
    if baseline_snap is not None:
        current_snap = snap_rows(current_payload)
        if current_snap is None:
            raise SystemExit(
                f"error: baseline has a snap experiment but none of "
                f"{current_origin} does; run "
                f"`python -m repro.bench snap --fixture --json <file>`"
            )
        check_snap(
            current_snap,
            baseline_snap,
            args.tolerance,
            current_origin,
            str(baseline_path),
            failures,
            improvements,
            report,
        )

    print("benchmark regression check:", current_origin, "vs", baseline_path)
    print("\n".join(report))
    if improvements:
        print(
            "improvement beyond tolerance — consider refreshing "
            "benchmarks/baseline.json:"
        )
        for line in improvements:
            print(f"  {line}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        verdict = "regression detected" if failures else "no regression"
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(f"### Benchmark regression gate — {verdict}\n\n")
            fh.write("\n".join(report) + "\n")
    if failures:
        print("REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        "ok: within tolerance, above serving floors; partition ceilings, "
        "mutation envelope, session-remap batching floors, baseline "
        "cross-backend identity, kernel identity, the kernel speedup "
        "floor, the shortcut superstep-reduction floor, the "
        "networked-serving QPS/p99 gates and the snap fixture-harness "
        "invariants hold"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
