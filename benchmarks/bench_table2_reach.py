"""Table 2: reachability time and data shipment on five real-life graphs.

Paper setting: card(F) = 4; ~30% positive random queries; columns are the
response time and shipped bytes of disReach / disReachn / disReachm.
Expected shape: disReach fastest; traffic disReachm < disReach << disReachn.
"""

import pytest

from conftest import bench_workload, cluster_for, dataset_key, reach_queries

DATASETS = ["livejournal", "wikitalk", "berkstan", "notredame", "amazon"]
ALGORITHMS = ["disReach", "disReachn", "disReachm"]
CARD = 4


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table2(benchmark, name, algorithm):
    key = dataset_key(name)
    cluster = cluster_for(key, CARD)
    queries = reach_queries(key, count=3, seed=0)
    benchmark.group = f"table2:{name}"
    bench_workload(benchmark, cluster, queries, algorithm)
    benchmark.extra_info["dataset"] = name
