"""Fig. 11(f): RPQ network traffic on the four labeled datasets (log axis
in the paper).  The reproduced metric is ``extra_info['traffic_bytes']``;
expected shape: disRPQ ≤ disRPQd << disRPQn (disRPQn ships the graphs).
"""

import pytest

from conftest import bench_workload, cluster_for, dataset_key, regular_queries
from repro.workload import DATASETS

NAMES = ["youtube", "meme", "citation", "internet"]
ALGORITHMS = ["disRPQ", "disRPQn", "disRPQd"]


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11f(benchmark, name, algorithm):
    key = dataset_key(name)
    cluster = cluster_for(key, DATASETS[name].paper_fragments or 10)
    queries = regular_queries(key, count=2, seed=1)
    benchmark.group = f"fig11f:{name}"
    bench_workload(benchmark, cluster, queries, algorithm, rounds=1)
    benchmark.extra_info["dataset"] = name
