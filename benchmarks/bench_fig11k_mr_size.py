"""Fig. 11(k): MRdRPQ time vs size(F) for queries Q1..Q4 (10 mappers).

Expected: response grows with size(F), and with query complexity
(Q1 ≤ Q2 ≤ Q3 ≤ Q4 roughly).
"""

import pytest

from conftest import graph_of, regular_queries, synthetic_key
from repro.mapreduce import MapReduceRuntime, mrd_rpq

SIZE_TICKS = [35_000, 155_000, 315_000]
MAPPERS = 10
SCALE = 0.002
QUERIES = {"Q1": (4, 6, 8), "Q2": (6, 8, 8), "Q3": (10, 12, 8), "Q4": (12, 14, 8)}


def _key(size_f: int):
    total = int(size_f * MAPPERS * SCALE)
    num_nodes = max(int(total / 2.4), 50)
    return synthetic_key(num_nodes, max(total - num_nodes, num_nodes), 12)


@pytest.mark.parametrize("size_f", SIZE_TICKS)
@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_fig11k(benchmark, size_f, qname):
    num_states, num_transitions, num_labels = QUERIES[qname]
    key = _key(size_f)
    graph = graph_of(key)
    queries = regular_queries(
        key, count=2, num_states=num_states,
        num_transitions=num_transitions, num_labels=num_labels, seed=0,
    )
    runtime = MapReduceRuntime()

    def run():
        return [mrd_rpq(graph, q, MAPPERS, runtime=runtime) for q in queries]

    benchmark.group = f"fig11k:{qname}"
    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "size_F": size_f,
            "query": qname,
            "response_ms": round(
                sum(r.stats.response_seconds for r in results) / len(results) * 1e3, 3
            ),
            "ecc_bytes": max(r.stats.ecc_bytes for r in results),
        }
    )
